#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "check/check.hpp"
#include "parallel/pool.hpp"
#include "tensor/kernels.hpp"

namespace darnet::tensor {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

// ---------------------------------------------------------------------------
// Blocked GEMM micro-kernels.
//
// Every kernel accumulates each output element over k in strictly ascending
// order starting from the element's current value, which is exactly the
// order the original single-threaded ikj loop used. Register tiles are
// initialised *from C* and swept over the full k extent (no k-splitting),
// so partial sums are never regrouped: results are bit-for-bit identical to
// the serial seed kernels for any thread count. Parallelism shards output
// rows, which are disjoint, so scheduling cannot affect results either.
//
// The former `if (aik == 0.0f) continue;` zero-skip branches are gone: they
// only fire for exactly-zero weights (essentially never after the first
// optimizer step) and defeat vectorisation of the inner loop. Adding the
// skipped `0.0f * b` terms is a bitwise no-op: an accumulator can never be
// -0.0 (IEEE addition only yields -0.0 when both operands are -0.0), so
// `acc + (+/-0.0)` leaves it unchanged.
// ---------------------------------------------------------------------------

/// One C row tile: c[j..j+NR) += sum_k a[k] * b[k][j..j+NR).
template <int NR>
inline void tile_row1(const float* a, const float* pb, float* c, int k, int n,
                      int j) {
  float acc[NR];
  for (int u = 0; u < NR; ++u) acc[u] = c[j + u];
  for (int kk = 0; kk < k; ++kk) {
    const float* b = pb + static_cast<std::size_t>(kk) * n + j;
    const float x = a[kk];
    for (int u = 0; u < NR; ++u) acc[u] += x * b[u];
  }
  for (int u = 0; u < NR; ++u) c[j + u] = acc[u];
}

/// Four C rows at once: 4x the reuse of each loaded B row.
template <int NR>
inline void tile_row4(const float* a0, const float* a1, const float* a2,
                      const float* a3, const float* pb, float* c0, float* c1,
                      float* c2, float* c3, int k, int n, int j) {
  float r0[NR], r1[NR], r2[NR], r3[NR];
  for (int u = 0; u < NR; ++u) {
    r0[u] = c0[j + u];
    r1[u] = c1[j + u];
    r2[u] = c2[j + u];
    r3[u] = c3[j + u];
  }
  for (int kk = 0; kk < k; ++kk) {
    const float* b = pb + static_cast<std::size_t>(kk) * n + j;
    const float x0 = a0[kk], x1 = a1[kk], x2 = a2[kk], x3 = a3[kk];
    for (int u = 0; u < NR; ++u) {
      const float bv = b[u];
      r0[u] += x0 * bv;
      r1[u] += x1 * bv;
      r2[u] += x2 * bv;
      r3[u] += x3 * bv;
    }
  }
  for (int u = 0; u < NR; ++u) {
    c0[j + u] = r0[u];
    c1[j + u] = r1[u];
    c2[j + u] = r2[u];
    c3[j + u] = r3[u];
  }
}

/// Minimum per-chunk flop count before a GEMM row range is worth shipping
/// to the pool (amortises wake-up latency).
constexpr std::int64_t kChunkFlops = 1 << 18;

/// Row-sharding grain for an (k x n)-wide GEMM.
inline std::int64_t gemm_grain(int k, int n) {
  const std::int64_t row_flops =
      2 * static_cast<std::int64_t>(k) * std::max(n, 1);
  return std::max<std::int64_t>(1, kChunkFlops / std::max<std::int64_t>(
                                                     1, row_flops));
}

}  // namespace

void gemm_rows_serial(const float* a, const float* b, float* c,
                      std::int64_t i0, std::int64_t i1, int k, int n) {
  std::int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + static_cast<std::size_t>(i) * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    int j = 0;
    for (; j + 16 <= n; j += 16) {
      tile_row4<16>(a0, a1, a2, a3, b, c0, c1, c2, c3, k, n, j);
    }
    for (; j + 4 <= n; j += 4) {
      tile_row4<4>(a0, a1, a2, a3, b, c0, c1, c2, c3, k, n, j);
    }
    for (; j < n; ++j) {
      tile_row4<1>(a0, a1, a2, a3, b, c0, c1, c2, c3, k, n, j);
    }
  }
  for (; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    int j = 0;
    for (; j + 16 <= n; j += 16) tile_row1<16>(arow, b, crow, k, n, j);
    for (; j + 4 <= n; j += 4) tile_row1<4>(arow, b, crow, k, n, j);
    for (; j < n; ++j) tile_row1<1>(arow, b, crow, k, n, j);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
  require(a.dim(1) == b.dim(0), "matmul: inner dims mismatch");
  Tensor c({a.dim(0), b.dim(1)});
  matmul_accumulate(a, b, c);
  return c;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
          "matmul_accumulate: rank-2 tensors required");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n,
          "matmul_accumulate: shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // One dispatch per call: vector ISA active -> SIMD row kernel, else the
  // scalar bit-parity golden. Both shard disjoint rows, so thread count
  // never affects results for a fixed ISA.
  const kernels::Kernels* kv = kernels::active_kernels();
  const auto rows_fn = (kv != nullptr) ? kv->gemm_rows : &gemm_rows_serial;
#ifdef DARNET_CHECKED
  // Checked builds: every chunk writes a disjoint band of output rows and
  // together the bands tile [0, m) exactly.
  check::ShardWriteTracker tracker("matmul_accumulate output rows");
  parallel::parallel_for(0, m, gemm_grain(k, n),
                         [&](std::int64_t i0, std::int64_t i1) {
                           tracker.record(i0, i1);
                           rows_fn(pa, pb, pc, i0, i1, k, n);
                         });
  tracker.expect_exact_cover(0, m);
#else
  parallel::parallel_for(0, m, gemm_grain(k, n),
                         [&](std::int64_t i0, std::int64_t i1) {
                           rows_fn(pa, pb, pc, i0, i1, k, n);
                         });
#endif
}

Tensor matmul_bt(const Tensor& a, const Tensor& bt) {
  require(a.rank() == 2 && bt.rank() == 2, "matmul_bt: rank-2 required");
  const int m = a.dim(0), k = a.dim(1), n = bt.dim(0);
  require(bt.dim(1) == k, "matmul_bt: inner dims mismatch");
  const std::int64_t flops = 2LL * m * k * n;
  if (flops >= 32768) {
    Tensor c({m, n});
    // Materialise B = Bt^T once and run the blocked kernel. Each output
    // element still accumulates over k in ascending order from 0, so this
    // is bit-for-bit the same as the direct dot-product loop below.
    const Tensor b = transpose(bt);
    matmul_accumulate(a, b, c);
    return c;
  }
  Tensor c = Tensor::uninit({m, n});  // every element written below
  const float* pa = a.data();
  const float* pb = bt.data();
  float* pc = c.data();
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = pb + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
  return c;
}

Tensor matmul_at(const Tensor& at, const Tensor& b) {
  require(at.rank() == 2 && b.rank() == 2, "matmul_at: rank-2 required");
  const int k = at.dim(0), m = at.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_at: inner dims mismatch");
  Tensor c({m, n});
  const std::int64_t flops = 2LL * m * k * n;
  if (flops >= 32768) {
    // Materialise A = At^T and run the blocked kernel; per-element
    // accumulation order (ascending k from 0) matches the direct loop.
    const Tensor a = transpose(at);
    matmul_accumulate(a, b, c);
    return c;
  }
  const float* pa = at.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = pa + static_cast<std::size_t>(kk) * m;
    const float* brow = pb + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float aki = arow[i];
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

void add_inplace(Tensor& dst, const Tensor& src) {
  require(dst.same_shape(src), "add_inplace: shape mismatch");
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.numel();
  for (std::size_t i = 0; i < n; ++i) d[i] += s[i];
}

void axpy(float alpha, const Tensor& src, Tensor& dst) {
  require(dst.same_shape(src), "axpy: shape mismatch");
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.numel();
  for (std::size_t i = 0; i < n; ++i) d[i] += alpha * s[i];
}

void scale_inplace(Tensor& t, float alpha) noexcept {
  for (auto& v : t.flat()) v *= alpha;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  require(a.same_shape(b), "hadamard: shape mismatch");
  Tensor c = Tensor::uninit(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const std::size_t n = a.numel();
  for (std::size_t i = 0; i < n; ++i) pc[i] = pa[i] * pb[i];
  return c;
}

double sum(const Tensor& t) noexcept {
  double acc = 0.0;
  for (float v : t.flat()) acc += v;
  return acc;
}

double mean(const Tensor& t) {
  if (t.empty()) throw std::invalid_argument("mean: empty tensor");
  return sum(t) / static_cast<double>(t.numel());
}

float max_value(const Tensor& t) {
  if (t.empty()) throw std::invalid_argument("max_value: empty tensor");
  return *std::max_element(t.flat().begin(), t.flat().end());
}

int argmax(std::span<const float> values) {
  if (values.empty()) throw std::invalid_argument("argmax: empty span");
  return static_cast<int>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

double l2_norm(const Tensor& t) noexcept {
  double acc = 0.0;
  for (float v : t.flat()) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

Tensor softmax_rows(const Tensor& logits) {
  require(logits.rank() == 2, "softmax_rows: rank-2 required");
  const int n = logits.dim(0), c = logits.dim(1);
  Tensor out = Tensor::uninit({n, c});
  const float* in = logits.data();
  float* o = out.data();
  // Rows are independent; sharding them over the pool is bit-exact.
  parallel::parallel_for(
      0, n, std::max(1, 4096 / std::max(1, c)),
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t i = r0; i < r1; ++i) {
          const float* row = in + static_cast<std::size_t>(i) * c;
          float* orow = o + static_cast<std::size_t>(i) * c;
          float mx = row[0];
          for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
          double denom = 0.0;
          for (int j = 0; j < c; ++j) {
            orow[j] = std::exp(row[j] - mx);
            denom += orow[j];
          }
          const float inv = static_cast<float>(1.0 / denom);
          for (int j = 0; j < c; ++j) orow[j] *= inv;
        }
      });
  return out;
}

Tensor transpose(const Tensor& t) {
  require(t.rank() == 2, "transpose: rank-2 required");
  const int m = t.dim(0), n = t.dim(1);
  Tensor out = Tensor::uninit({n, m});
  const float* in = t.data();
  float* o = out.data();
  // Tiled to keep both access patterns cache-resident.
  constexpr int kTile = 32;
  for (int i0 = 0; i0 < m; i0 += kTile) {
    const int i1 = std::min(m, i0 + kTile);
    for (int j0 = 0; j0 < n; j0 += kTile) {
      const int j1 = std::min(n, j0 + kTile);
      for (int i = i0; i < i1; ++i) {
        for (int j = j0; j < j1; ++j) {
          o[static_cast<std::size_t>(j) * m + i] =
              in[static_cast<std::size_t>(i) * n + j];
        }
      }
    }
  }
  return out;
}

Tensor take_row(const Tensor& t, int row) {
  require(t.rank() >= 1, "take_row: rank >= 1 required");
  require(row >= 0 && row < t.dim(0), "take_row: row out of range");
  Shape shape = t.shape();
  shape[0] = 1;
  Tensor out = Tensor::uninit(shape);
  const std::size_t stride = t.numel() / static_cast<std::size_t>(t.dim(0));
  std::copy_n(t.data() + static_cast<std::size_t>(row) * stride, stride,
              out.data());
  return out;
}

Tensor stack_rows(std::span<const Tensor> rows) {
  require(!rows.empty(), "stack_rows: empty input");
  const Tensor& first = rows.front();
  require(first.rank() >= 1 && first.dim(0) == 1,
          "stack_rows: rows must have leading dim 1");
  Shape shape = first.shape();
  shape[0] = static_cast<int>(rows.size());
  Tensor out = Tensor::uninit(shape);
  const std::size_t stride = first.numel();
  float* o = out.data();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    require(rows[i].same_shape(first), "stack_rows: row shape mismatch");
    std::copy_n(rows[i].data(), stride, o + i * stride);
  }
  return out;
}

}  // namespace darnet::tensor
