#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace darnet::tensor {

namespace {
void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
  require(a.dim(1) == b.dim(0), "matmul: inner dims mismatch");
  Tensor c({a.dim(0), b.dim(1)});
  matmul_accumulate(a, b, c);
  return c;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
          "matmul_accumulate: rank-2 tensors required");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n,
          "matmul_accumulate: shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: unit-stride inner loop over both B and C rows.
  for (int i = 0; i < m; ++i) {
    float* crow = pc + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float aik = pa[static_cast<std::size_t>(i) * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

Tensor matmul_bt(const Tensor& a, const Tensor& bt) {
  require(a.rank() == 2 && bt.rank() == 2, "matmul_bt: rank-2 required");
  const int m = a.dim(0), k = a.dim(1), n = bt.dim(0);
  require(bt.dim(1) == k, "matmul_bt: inner dims mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = bt.data();
  float* pc = c.data();
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = pb + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
  return c;
}

Tensor matmul_at(const Tensor& at, const Tensor& b) {
  require(at.rank() == 2 && b.rank() == 2, "matmul_at: rank-2 required");
  const int k = at.dim(0), m = at.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_at: inner dims mismatch");
  Tensor c({m, n});
  const float* pa = at.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = pa + static_cast<std::size_t>(kk) * m;
    const float* brow = pb + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

void add_inplace(Tensor& dst, const Tensor& src) {
  require(dst.same_shape(src), "add_inplace: shape mismatch");
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.numel();
  for (std::size_t i = 0; i < n; ++i) d[i] += s[i];
}

void axpy(float alpha, const Tensor& src, Tensor& dst) {
  require(dst.same_shape(src), "axpy: shape mismatch");
  float* d = dst.data();
  const float* s = src.data();
  const std::size_t n = dst.numel();
  for (std::size_t i = 0; i < n; ++i) d[i] += alpha * s[i];
}

void scale_inplace(Tensor& t, float alpha) noexcept {
  for (auto& v : t.flat()) v *= alpha;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  require(a.same_shape(b), "hadamard: shape mismatch");
  Tensor c(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const std::size_t n = a.numel();
  for (std::size_t i = 0; i < n; ++i) pc[i] = pa[i] * pb[i];
  return c;
}

double sum(const Tensor& t) noexcept {
  double acc = 0.0;
  for (float v : t.flat()) acc += v;
  return acc;
}

double mean(const Tensor& t) {
  if (t.empty()) throw std::invalid_argument("mean: empty tensor");
  return sum(t) / static_cast<double>(t.numel());
}

float max_value(const Tensor& t) {
  if (t.empty()) throw std::invalid_argument("max_value: empty tensor");
  return *std::max_element(t.flat().begin(), t.flat().end());
}

int argmax(std::span<const float> values) {
  if (values.empty()) throw std::invalid_argument("argmax: empty span");
  return static_cast<int>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

double l2_norm(const Tensor& t) noexcept {
  double acc = 0.0;
  for (float v : t.flat()) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

Tensor softmax_rows(const Tensor& logits) {
  require(logits.rank() == 2, "softmax_rows: rank-2 required");
  const int n = logits.dim(0), c = logits.dim(1);
  Tensor out({n, c});
  for (int i = 0; i < n; ++i) {
    const float* row = logits.data() + static_cast<std::size_t>(i) * c;
    float* orow = out.data() + static_cast<std::size_t>(i) * c;
    float mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor transpose(const Tensor& t) {
  require(t.rank() == 2, "transpose: rank-2 required");
  const int m = t.dim(0), n = t.dim(1);
  Tensor out({n, m});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.at(j, i) = t.at(i, j);
  }
  return out;
}

}  // namespace darnet::tensor
