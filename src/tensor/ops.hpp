// Numeric kernels over Tensors. All functions are pure (outputs returned or
// written to caller-provided tensors); hot paths are written over raw float
// pointers for auto-vectorisation, register-tiled for cache reuse, and
// row-sharded across the parallel::ThreadPool.
//
// Determinism contract: every kernel accumulates each output element in the
// same (ascending-k) order as the original serial implementation and shards
// only disjoint output rows, so results are bit-for-bit identical to the
// single-threaded seed kernels for *any* DARNET_THREADS value. See
// DESIGN.md "Threading model".
//
// Kernel dispatch (tensor/kernels.hpp): the GEMM entry points select a
// vector microkernel (AVX2 / AVX-512) at runtime when DARNET_KERNELS
// allows it. The scalar path below remains the bit-parity golden; the
// vector path is deterministic per-ISA (thread count still cannot change
// results) but uses FMA, so it matches the golden only to tolerance. See
// DESIGN.md "Kernel architecture".
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace darnet::tensor {

/// C = A(MxK) * B(KxN). Shapes checked.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C += A(MxK) * B(KxN), accumulating into an existing tensor.
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c);

/// Serial building block behind matmul: C rows [i0, i1) += A * B over raw
/// row-major buffers (A is MxK, B is KxN, C is MxN). Exposed so other
/// modules (e.g. the im2col convolution) can drive the same register-tiled
/// kernel with their own sharding strategy.
void gemm_rows_serial(const float* a, const float* b, float* c,
                      std::int64_t i0, std::int64_t i1, int k, int n);

/// C = A(MxK) * B(NxK)^T -- the backward-friendly layout.
Tensor matmul_bt(const Tensor& a, const Tensor& b_transposed);

/// C = A(KxM)^T * B(KxN).
Tensor matmul_at(const Tensor& a_transposed, const Tensor& b);

/// Elementwise in-place: dst += src (shapes must match).
void add_inplace(Tensor& dst, const Tensor& src);

/// Elementwise in-place: dst += alpha * src.
void axpy(float alpha, const Tensor& src, Tensor& dst);

/// Elementwise in-place scaling.
void scale_inplace(Tensor& t, float alpha) noexcept;

/// Elementwise product (hadamard), returned.
Tensor hadamard(const Tensor& a, const Tensor& b);

/// Sum of all elements.
[[nodiscard]] double sum(const Tensor& t) noexcept;

/// Mean of all elements.
[[nodiscard]] double mean(const Tensor& t);

/// Max of all elements (tensor must be non-empty).
[[nodiscard]] float max_value(const Tensor& t);

/// Index of max element of a 1-d slice starting at `offset` of length `n`.
[[nodiscard]] int argmax(std::span<const float> values);

/// L2 norm of all elements.
[[nodiscard]] double l2_norm(const Tensor& t) noexcept;

/// Row-wise softmax of a [N, C] tensor.
Tensor softmax_rows(const Tensor& logits);

/// Transpose a [M, N] tensor.
Tensor transpose(const Tensor& t);

/// Copy row `row` along the leading axis of a [N, ...] tensor into a new
/// [1, ...] tensor (same trailing shape). Bounds-checked.
Tensor take_row(const Tensor& t, int row);

/// Stack K same-shaped [1, ...] tensors into a [K, ...] batch -- the
/// serving tier's gather step. Throws on empty input, leading dim != 1,
/// or shape mismatch between rows.
Tensor stack_rows(std::span<const Tensor> rows);

}  // namespace darnet::tensor
