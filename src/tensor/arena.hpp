// Scratch arena for the zero-alloc inference hot path.
//
// An Arena is a size-bucketed free list of heap blocks. While an ArenaScope
// is active on a thread, every Storage (tensor payload, im2col scratch,
// ArenaAlloc container) allocated on that thread takes its block from the
// arena and returns it there on destruction. After one warm-up pass the
// arena holds a block for every size the workload uses, so steady-state
// inference performs zero heap allocations (proven by the
// counting-allocator test, enforced by the hot-path-alloc lint rule).
//
// Ownership and threading:
//  * An Arena is single-thread-at-a-time: it has no internal locking. The
//    serve tier gives each batching worker its own arena; the engine owns
//    a fallback arena for direct classify_batch callers.
//  * Blocks are plain std::malloc blocks, so a block may legally be taken
//    from one arena and released to another (or to the heap) -- tensors
//    that escape a scope degrade to ordinary heap behaviour, they never
//    corrupt anything.
//  * With no scope active, scratch_alloc/scratch_free degrade to plain
//    malloc/free: cold paths and training are unaffected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace darnet::tensor {

class Arena {
 public:
  Arena() = default;
  ~Arena() { release(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Pop a cached block of (rounded) `bytes`, or fall back to the heap.
  [[nodiscard]] void* take(std::size_t bytes);
  /// Cache a block for reuse. Never frees; see release().
  void put(void* p, std::size_t bytes);

  /// Bytes currently held in the free lists (the arena's footprint).
  [[nodiscard]] std::size_t bytes_cached() const noexcept {
    return bytes_cached_;
  }
  /// Heap allocations performed on behalf of this arena (cache misses).
  [[nodiscard]] std::uint64_t heap_allocs() const noexcept {
    return heap_allocs_;
  }

  /// Free every cached block back to the heap.
  void release() noexcept;

 private:
  struct Bucket {
    std::size_t bytes = 0;           // rounded block size
    std::vector<void*> blocks;       // free blocks of exactly `bytes`
  };

  Bucket& bucket_for(std::size_t bytes);

  std::vector<Bucket> buckets_;      // sorted by Bucket::bytes
  std::size_t bytes_cached_ = 0;
  std::uint64_t heap_allocs_ = 0;
};

namespace detail {
// The thread's active arena (innermost ArenaScope), if any.
inline thread_local Arena* t_current_arena = nullptr;
// Heap fallback, kept out-of-line so malloc/free live in exactly one TU.
[[nodiscard]] void* heap_alloc(std::size_t bytes);
void heap_free(void* p) noexcept;
}  // namespace detail

[[nodiscard]] inline Arena* current_arena() noexcept {
  return detail::t_current_arena;
}

/// RAII activation of an arena on the current thread. Scopes nest; the
/// innermost wins (the engine's fallback scope defers to a serve worker's).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) noexcept
      : prev_(detail::t_current_arena) {
    detail::t_current_arena = &arena;
  }
  ~ArenaScope() { detail::t_current_arena = prev_; }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

/// Allocate `bytes` from the thread's arena, or the heap when none is
/// active. Pair every call with scratch_free of the same size.
[[nodiscard]] inline void* scratch_alloc(std::size_t bytes) {
  if (Arena* a = detail::t_current_arena) return a->take(bytes);
  return detail::heap_alloc(bytes);
}

inline void scratch_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (Arena* a = detail::t_current_arena) {
    a->put(p, bytes);
    return;
  }
  detail::heap_free(p);
}

/// Arena-backed contiguous float buffer -- the Tensor payload and the
/// sanctioned replacement for std::vector<float> on the inference hot
/// path (hot-path-alloc lint rule). Value-semantic like vector, but the
/// backing block comes from the thread's scratch arena when one is
/// active, and construction can skip the zero-fill (Init::kUninit) for
/// buffers that are fully overwritten.
class Storage {
 public:
  enum class Init : std::uint8_t { kZeroed, kUninit };

  Storage() noexcept = default;
  explicit Storage(std::size_t n, Init init = Init::kZeroed)
      : p_(n ? static_cast<float*>(scratch_alloc(n * sizeof(float)))
             : nullptr),
        n_(n) {
    if (p_ != nullptr && init == Init::kZeroed) {
      std::memset(p_, 0, n_ * sizeof(float));
    }
  }
  Storage(const Storage& other) : Storage(other.n_, Init::kUninit) {
    if (n_ != 0) std::memcpy(p_, other.p_, n_ * sizeof(float));
  }
  Storage(Storage&& other) noexcept : p_(other.p_), n_(other.n_) {
    other.p_ = nullptr;
    other.n_ = 0;
  }
  Storage& operator=(const Storage& other) {
    if (this != &other) assign_copy(other.p_, other.n_);
    return *this;
  }
  Storage& operator=(Storage&& other) noexcept {
    if (this != &other) {
      scratch_free(p_, n_ * sizeof(float));
      p_ = other.p_;
      n_ = other.n_;
      other.p_ = nullptr;
      other.n_ = 0;
    }
    return *this;
  }
  ~Storage() { scratch_free(p_, n_ * sizeof(float)); }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] float* data() noexcept { return p_; }
  [[nodiscard]] const float* data() const noexcept { return p_; }
  [[nodiscard]] float* begin() noexcept { return p_; }
  [[nodiscard]] float* end() noexcept { return p_ + n_; }
  [[nodiscard]] const float* begin() const noexcept { return p_; }
  [[nodiscard]] const float* end() const noexcept { return p_ + n_; }
  float& operator[](std::size_t i) noexcept { return p_[i]; }
  float operator[](std::size_t i) const noexcept { return p_[i]; }

  /// Re-size (discarding contents) and copy `n` floats from src.
  void assign_copy(const float* src, std::size_t n) {
    if (n_ != n) {
      scratch_free(p_, n_ * sizeof(float));
      p_ = n ? static_cast<float*>(scratch_alloc(n * sizeof(float))) : nullptr;
      n_ = n;
    }
    if (n != 0) std::memcpy(p_, src, n * sizeof(float));
  }

  /// Re-size without preserving or initialising contents.
  void resize_uninit(std::size_t n) {
    if (n_ != n) {
      scratch_free(p_, n_ * sizeof(float));
      p_ = n ? static_cast<float*>(scratch_alloc(n * sizeof(float))) : nullptr;
      n_ = n;
    }
  }

 private:
  float* p_ = nullptr;
  std::size_t n_ = 0;
};

/// Minimal allocator funnelling container storage through the thread's
/// scratch arena (e.g. the per-batch std::vector<Tensor> in
/// ParallelConcat). Stateless: any instance may free any other's memory,
/// because everything bottoms out in malloc-compatible blocks.
template <typename T>
struct ArenaAlloc {
  using value_type = T;

  ArenaAlloc() noexcept = default;
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>&) noexcept {}  // NOLINT: converting ctor

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(scratch_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    scratch_free(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const ArenaAlloc<U>&) const noexcept {
    return true;
  }
};

}  // namespace darnet::tensor
