// Small-buffer tensor shape. Tensors are at most rank 4 everywhere in
// DarNet (batch, channel, height, width), so storing dims in a fixed
// inline array removes the per-Tensor heap allocation a std::vector<int>
// shape would cost -- a prerequisite for the zero-alloc inference hot
// path (DESIGN.md "Kernel architecture").
//
// Shape converts implicitly from and to std::vector<int> so cold-path
// interfaces (Layer::shape_contract, checkpoint code, tests) keep their
// vector-based signatures; the conversions allocate and must stay off the
// hot path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace darnet::tensor {

class Shape {
 public:
  static constexpr std::size_t kMaxRank = 7;

  constexpr Shape() noexcept = default;
  Shape(std::initializer_list<int> dims) { assign(dims.begin(), dims.size()); }
  // NOLINTNEXTLINE(google-explicit-constructor): vector interop by design.
  Shape(const std::vector<int>& dims) { assign(dims.data(), dims.size()); }

  // NOLINTNEXTLINE(google-explicit-constructor): cold-path interop only.
  operator std::vector<int>() const {
    return std::vector<int>(begin(), end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return rank_; }
  [[nodiscard]] bool empty() const noexcept { return rank_ == 0; }

  [[nodiscard]] int operator[](std::size_t i) const noexcept {
    return dims_[i];
  }
  [[nodiscard]] int& operator[](std::size_t i) noexcept { return dims_[i]; }

  [[nodiscard]] const int* begin() const noexcept { return dims_.data(); }
  [[nodiscard]] const int* end() const noexcept { return dims_.data() + rank_; }
  [[nodiscard]] int* begin() noexcept { return dims_.data(); }
  [[nodiscard]] int* end() noexcept { return dims_.data() + rank_; }

  void push_back(int d) {
    if (rank_ >= kMaxRank) throw std::length_error("Shape: rank > kMaxRank");
    dims_[rank_++] = d;
  }
  void clear() noexcept { rank_ = 0; }

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }

 private:
  void assign(const int* p, std::size_t n) {
    if (n > kMaxRank) throw std::length_error("Shape: rank > kMaxRank");
    rank_ = n;
    for (std::size_t i = 0; i < n; ++i) dims_[i] = p[i];
  }

  std::array<int, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

// Heterogeneous comparisons keep vector-based call sites (contracts,
// tests) working without a conversion round-trip.
inline bool operator==(const Shape& a, const std::vector<int>& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}
inline bool operator==(const std::vector<int>& a, const Shape& b) noexcept {
  return b == a;
}

}  // namespace darnet::tensor
