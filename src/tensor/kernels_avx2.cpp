// AVX2+FMA kernel TU. Compiled with -mavx2 -mfma -ffp-contract=fast via
// set_source_files_properties (src/tensor/CMakeLists.txt); the rest of
// the library never needs those flags, and the kernels are only ever
// reached after __builtin_cpu_supports confirms the CPU. Builds to a
// nullptr stub when the toolchain cannot target AVX2.
#include <cstdint>

#include "tensor/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#define DARNET_KERNEL_NS impl_avx2
#define DARNET_KERNEL_WIDTH 8
#include "tensor/kernels_vec.inc"
#undef DARNET_KERNEL_NS
#undef DARNET_KERNEL_WIDTH

namespace darnet::tensor::kernels {

const Kernels* avx2_kernels() {
  static constexpr Kernels k{&impl_avx2::gemm_rows,
                             &impl_avx2::gemm_bias_packed,
                             &impl_avx2::gemv_bias_wt,
                             &impl_avx2::conv2d_direct, 4};
  return &k;
}

}  // namespace darnet::tensor::kernels

#else  // toolchain cannot target AVX2: dispatcher sees "not compiled in"

namespace darnet::tensor::kernels {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace darnet::tensor::kernels

#endif
