#include "tensor/kernels.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <string_view>

namespace darnet::tensor::kernels {

// Defined in the per-ISA TUs; nullptr when the toolchain lacked the flags.
const Kernels* avx2_kernels();
const Kernels* avx512_kernels();

namespace {

bool cpu_supports(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

const Kernels* table_for(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2:
      return avx2_kernels();
    case Isa::kAvx512:
      return avx512_kernels();
    case Isa::kScalar:
      return nullptr;
  }
  return nullptr;
}

Isa best_supported() noexcept {
  if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

/// DARNET_KERNELS: scalar | avx2 | avx512 | auto (default). An explicit
/// request the CPU or build cannot honour falls back to the next-best
/// supported ISA -- selection must never produce SIGILL. Unrecognised
/// values behave like auto.
Isa resolve() noexcept {
  const char* e = std::getenv("DARNET_KERNELS");
  const std::string_view req = (e != nullptr && *e != '\0') ? e : "auto";
  if (req == "scalar") return Isa::kScalar;
  if (req == "avx2") {
    return isa_supported(Isa::kAvx2) ? Isa::kAvx2 : Isa::kScalar;
  }
  if (req == "avx512") {
    if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
    return isa_supported(Isa::kAvx2) ? Isa::kAvx2 : Isa::kScalar;
  }
  return best_supported();
}

// Resolved ISA; -1 = not yet resolved. Racing first calls both compute
// the same value, so the relaxed publish is benign.
std::atomic<int> g_isa{-1};

}  // namespace

bool isa_supported(Isa isa) noexcept {
  if (isa == Isa::kScalar) return true;
  return cpu_supports(isa) && table_for(isa) != nullptr;
}

Isa active() noexcept {
  const int v = g_isa.load(std::memory_order_acquire);
  if (v >= 0) return static_cast<Isa>(v);
  const Isa r = resolve();
  g_isa.store(static_cast<int>(r), std::memory_order_release);
  return r;
}

Isa set_isa(Isa isa) noexcept {
  const Isa eff = isa_supported(isa) ? isa : best_supported();
  g_isa.store(static_cast<int>(eff), std::memory_order_release);
  return eff;
}

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const Kernels* active_kernels() noexcept { return table_for(active()); }

void pack_rows_mr4(const float* a, int rows, int k, float* packed) {
  const int full = rows & ~3;
  for (int p = 0; p < full; p += 4) {
    const float* r0 = a + static_cast<std::size_t>(p) * k;
    const float* r1 = r0 + k;
    const float* r2 = r1 + k;
    const float* r3 = r2 + k;
    float* out = packed + static_cast<std::size_t>(p) * k;
    for (int kk = 0; kk < k; ++kk) {
      out[static_cast<std::size_t>(kk) * 4 + 0] = r0[kk];
      out[static_cast<std::size_t>(kk) * 4 + 1] = r1[kk];
      out[static_cast<std::size_t>(kk) * 4 + 2] = r2[kk];
      out[static_cast<std::size_t>(kk) * 4 + 3] = r3[kk];
    }
  }
  float* tail = packed + static_cast<std::size_t>(full) * k;
  for (int r = full; r < rows; ++r) {
    const float* src = a + static_cast<std::size_t>(r) * k;
    float* dst = tail + static_cast<std::size_t>(r - full) * k;
    for (int kk = 0; kk < k; ++kk) dst[kk] = src[kk];
  }
}

}  // namespace darnet::tensor::kernels
