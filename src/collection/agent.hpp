// Collection agent: the per-device module of the data streaming framework.
//
// Each agent polls its sensors on their native periods, timestamps the
// tuples with its own (drifting) device clock, buffers them, and pushes a
// DataBatch to the controller on its transmission period. It also answers
// the controller's clock-synchronisation protocol: on receiving the
// master's time it sets its clock to master + measured one-way latency
// (Section 4.1, "timestamp manager ... master-slave architecture").
#pragma once

#include <memory>
#include <vector>

#include "collection/link.hpp"
#include "collection/messages.hpp"
#include "collection/sensor.hpp"
#include "collection/sim.hpp"

namespace darnet::collection {

struct AgentConfig {
  std::uint32_t agent_id{0};
  double transmit_period_s = 0.25;
  /// Transmit early once the buffered payload exceeds this (0 disables).
  /// "The transmission frequency should be determined based on the
  /// latency and bandwidth between the agent and the controller" (§3.1):
  /// bulky streams (camera frames) flush by size, chatty ones by period.
  std::size_t max_batch_bytes = 0;
  /// The empirically measured one-way network delay added to the master's
  /// time on sync (the paper's "plus the empirically measured network
  /// delay").
  double latency_compensation_s = 0.015;
  double clock_drift_ppm = 0.0;
  double clock_initial_offset_s = 0.0;
};

class CollectionAgent {
 public:
  /// `uplink` carries agent->controller traffic; the controller's sync
  /// messages arrive via on_message(). The agent registers itself on start.
  CollectionAgent(Simulation& sim, AgentConfig config, VirtualLink& uplink);

  void add_sensor(std::unique_ptr<Sensor> sensor);

  /// Begin polling and transmitting. Call once after sensors are attached.
  void start();

  /// Stop scheduling further polls/transmissions after the current horizon.
  void stop() noexcept { running_ = false; }

  /// Deliver a controller->agent payload (clock sync).
  void on_message(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const DeviceClock& clock() const noexcept { return clock_; }
  [[nodiscard]] double clock_error_now() const noexcept {
    return clock_.error(sim_.now());
  }
  [[nodiscard]] std::uint32_t id() const noexcept { return config_.agent_id; }

  [[nodiscard]] std::uint64_t batches_sent() const noexcept {
    return batches_sent_;
  }

 private:
  void poll_sensor(std::size_t index);
  void flush();
  void transmit();

  Simulation& sim_;
  AgentConfig config_;
  VirtualLink& uplink_;
  DeviceClock clock_;
  std::vector<std::unique_ptr<Sensor>> sensors_;
  std::vector<SensorReading> buffer_;
  std::size_t buffered_bytes_{0};
  std::uint64_t batches_sent_{0};
  bool running_{false};
  bool started_{false};
};

}  // namespace darnet::collection
