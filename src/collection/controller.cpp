#include "collection/controller.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace darnet::collection {

Controller::Controller(Simulation& sim, ControllerConfig config)
    : sim_(sim), config_(config) {
  if (config.clock_sync_period_s <= 0.0 || config.alignment_dt_s <= 0.0 ||
      config.smoothing_window_s < 0.0) {
    throw std::invalid_argument("Controller: invalid configuration");
  }
}

void Controller::attach_agent(std::uint32_t agent_id, VirtualLink& downlink) {
  if (downlinks_.contains(agent_id)) {
    throw std::invalid_argument("Controller::attach_agent: duplicate agent");
  }
  downlinks_[agent_id] = &downlink;
}

void Controller::start() {
  if (started_) throw std::logic_error("Controller::start: started twice");
  started_ = true;
  broadcast_clock_sync();
}

void Controller::broadcast_clock_sync() {
  DARNET_COUNTER_ADD("collection/clock_sync_rounds_total", 1);
  const ClockSyncMessage sync{master_time()};
  for (auto& [id, link] : downlinks_) link->send(encode(sync));
  sim_.schedule_in(config_.clock_sync_period_s,
                   [this] { broadcast_clock_sync(); });
}

void Controller::on_message(std::span<const std::uint8_t> bytes) {
  switch (peek_kind(bytes)) {
    case MessageKind::kRegister: {
      const RegisterMessage reg = decode_register(bytes);
      agent_streams_[reg.agent_id] = reg.streams;
      break;
    }
    case MessageKind::kBatch: {
      DataBatch batch = decode_batch(bytes);
      ++batches_;
      DARNET_COUNTER_ADD("collection/batches_received_total", 1);
      DARNET_COUNTER_ADD("collection/tuples_received_total",
                         batch.readings.size());
      for (auto& reading : batch.readings) {
        ++tuples_;
        store_.append(reading.stream,
                      TimedTuple{reading.local_timestamp,
                                 std::move(reading.values), reading.tag});
      }
      break;
    }
    case MessageKind::kClockSync:
      throw std::logic_error(
          "Controller::on_message: unexpected clock-sync from an agent");
  }
}

std::vector<std::vector<float>> Controller::aligned_window(
    const std::vector<std::string>& streams, double t0, double t1,
    std::vector<double>* grid_times) const {
  DARNET_TIMER("collection/align_ns");
  DARNET_SPAN("collection/align_window");
  return store_.aligned(streams, t0, t1, config_.alignment_dt_s,
                        config_.smoothing_window_s, grid_times);
}

std::optional<std::vector<std::string>> Controller::streams_of(
    std::uint32_t agent_id) const {
  const auto it = agent_streams_.find(agent_id);
  if (it == agent_streams_.end()) return std::nullopt;
  return it->second;
}

}  // namespace darnet::collection
