#include "collection/sensor.hpp"

#include <stdexcept>

namespace darnet::collection {

CallbackSensor::CallbackSensor(std::string stream, double poll_period_s,
                               Sampler sampler)
    : stream_(std::move(stream)), period_(poll_period_s),
      sampler_(std::move(sampler)) {
  if (stream_.empty() || period_ <= 0.0 || !sampler_) {
    throw std::invalid_argument("CallbackSensor: invalid arguments");
  }
}

}  // namespace darnet::collection
