// Virtual point-to-point link (Bluetooth / 802.11 stand-in).
//
// Promoted to darnet::sim alongside the event queue so fleet scenarios
// can configure loss/reorder knobs directly (see docs/SIMULATION.md);
// this header keeps the collection-side names alive for the middleware
// and its callers.
#pragma once

#include "collection/sim.hpp"
#include "sim/link.hpp"

namespace darnet::collection {

using sim::LinkConfig;
using sim::LinkStats;
using sim::VirtualLink;

}  // namespace darnet::collection
