// Virtual point-to-point link (Bluetooth / 802.11 stand-in).
//
// Delivers byte payloads through the simulation with configurable base
// latency, jitter, loss, and bandwidth, and keeps transfer statistics for
// the privacy pipeline's bandwidth accounting. Jitter can reorder messages
// -- which is precisely why the controller orders tuples by their embedded
// timestamps rather than by arrival (Section 3.2, "Data Normalization").
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "collection/sim.hpp"
#include "util/rng.hpp"

namespace darnet::collection {

struct LinkConfig {
  double base_latency_s = 0.015;   // one-way propagation + stack latency
  double jitter_s = 0.005;         // uniform [0, jitter) extra delay
  double loss_rate = 0.0;          // i.i.d. drop probability
  double bandwidth_bps = 2.5e6;    // ~Bluetooth 2.1 EDR effective payload
};

struct LinkStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_dropped{0};
  std::uint64_t bytes_sent{0};
  double total_latency_s{0.0};  // summed over delivered messages

  [[nodiscard]] double mean_latency_s() const noexcept {
    const auto delivered = messages_sent - messages_dropped;
    return delivered ? total_latency_s / static_cast<double>(delivered) : 0.0;
  }
};

class VirtualLink {
 public:
  using Handler = std::function<void(std::vector<std::uint8_t>)>;

  VirtualLink(Simulation& sim, LinkConfig config, std::uint64_t seed);

  /// Receiver callback invoked (in simulation time) on delivery.
  void set_receiver(Handler handler);

  /// Queue a payload for transmission at the current simulation time.
  void send(std::vector<std::uint8_t> payload);

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = LinkStats{}; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

 private:
  Simulation& sim_;
  LinkConfig config_;
  util::Rng rng_;
  Handler receiver_;
  LinkStats stats_;
  SimTime channel_free_at_{0.0};  // serialisation delay queueing point
};

}  // namespace darnet::collection
