// Sensor abstraction polled by a collection agent.
//
// "The responsibilities of the agent include periodically polling the
// device's sensor, maintaining an internal clock for timestamping the
// data, and transmitting the data to the centralized controller at a
// specified frequency. ... The implementation of each agent is specific
// to the system and sensors in which it is embedded." (Section 3.1)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "collection/sim.hpp"

namespace darnet::collection {

class Sensor {
 public:
  virtual ~Sensor() = default;

  /// Stream identifier, unique within a deployment ("imu.accel", "camera").
  [[nodiscard]] virtual const std::string& stream() const = 0;

  /// Sample the sensor at true simulation time `now`. The agent never sees
  /// `now` directly -- it stamps the reading with its own drifting clock.
  virtual std::vector<float> sample(SimTime now) = 0;

  /// Native polling period (the paper's Android listeners fire every 25 ms).
  [[nodiscard]] virtual double poll_period_s() const = 0;
};

/// Adapts a callable into a Sensor; covers every sensor in the deployment
/// (the IMU channels read from a generated trace, the camera reads frames
/// from the scene renderer).
class CallbackSensor final : public Sensor {
 public:
  using Sampler = std::function<std::vector<float>(SimTime)>;

  CallbackSensor(std::string stream, double poll_period_s, Sampler sampler);

  [[nodiscard]] const std::string& stream() const override { return stream_; }
  std::vector<float> sample(SimTime now) override { return sampler_(now); }
  [[nodiscard]] double poll_period_s() const override { return period_; }

 private:
  std::string stream_;
  double period_;
  Sampler sampler_;
};

}  // namespace darnet::collection
