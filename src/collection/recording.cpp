#include "collection/recording.hpp"

#include <fstream>
#include <stdexcept>

namespace darnet::collection {

void SessionRecording::append(double arrival_time,
                              std::vector<std::uint8_t> payload) {
  if (!messages_.empty() && arrival_time < messages_.back().arrival_time) {
    throw std::invalid_argument(
        "SessionRecording::append: arrival times must be non-decreasing");
  }
  if (payload.empty()) {
    throw std::invalid_argument("SessionRecording::append: empty payload");
  }
  messages_.push_back({arrival_time, std::move(payload)});
}

void SessionRecording::drain_into(Controller& controller) const {
  for (const auto& msg : messages_) controller.on_message(msg.payload);
}

void SessionRecording::replay_into(Simulation& sim,
                                   Controller& controller) const {
  for (const auto& msg : messages_) {
    if (msg.arrival_time < sim.now()) {
      throw std::invalid_argument(
          "SessionRecording::replay_into: recording starts in the past");
    }
    sim.schedule(msg.arrival_time, [&controller, payload = msg.payload] {
      controller.on_message(payload);
    });
  }
}

void SessionRecording::serialize(util::BinaryWriter& writer) const {
  writer.write_u64(messages_.size());
  for (const auto& msg : messages_) {
    writer.write_f64(msg.arrival_time);
    writer.write_u64(msg.payload.size());
    writer.write_bytes(msg.payload);
  }
}

SessionRecording SessionRecording::deserialize(util::BinaryReader& reader) {
  SessionRecording rec;
  const auto count = reader.read_u64();
  rec.messages_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RecordedMessage msg;
    msg.arrival_time = reader.read_f64();
    const auto bytes = reader.read_u64();
    msg.payload.resize(bytes);
    for (auto& b : msg.payload) b = reader.read_u8();
    rec.messages_.push_back(std::move(msg));
  }
  return rec;
}

void SessionRecording::save(const std::string& path) const {
  util::BinaryWriter writer;
  serialize(writer);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("SessionRecording::save: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) {
    throw std::runtime_error("SessionRecording::save: write failed");
  }
}

SessionRecording SessionRecording::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("SessionRecording::load: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  util::BinaryReader reader(bytes);
  return deserialize(reader);
}

}  // namespace darnet::collection
