// In-memory time-series store (the deployment's statsd stand-in).
//
// Holds timestamp-ordered tuples per stream and implements the
// controller's "Data Normalization" (Section 3.2): tuples are ordered by
// their embedded timestamps (arrival order is meaningless under network
// jitter), gaps are filled by linear interpolation so streams running at
// different rates can be aggregated at consistent intervals, and a sliding
// moving average smooths commodity-sensor aberrations.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace darnet::collection {

struct TimedTuple {
  double timestamp{0.0};
  std::vector<float> values;
  std::uint32_t tag{0};
};

class TimeSeriesStore {
 public:
  /// Insert maintaining timestamp order (handles out-of-order arrival).
  void append(const std::string& stream, TimedTuple tuple);

  [[nodiscard]] bool has_stream(const std::string& stream) const;
  [[nodiscard]] std::vector<std::string> streams() const;
  [[nodiscard]] std::size_t count(const std::string& stream) const;

  /// Raw tuples of one stream, timestamp-ordered.
  [[nodiscard]] const std::vector<TimedTuple>& series(
      const std::string& stream) const;

  /// Linear interpolation at time `t`. Returns nullopt when the stream is
  /// empty or `t` lies outside the recorded range by more than
  /// `extrapolation_tolerance` (in which case the nearest sample would be
  /// a fabrication, not an interpolation).
  [[nodiscard]] std::optional<std::vector<float>> interpolate(
      const std::string& stream, double t,
      double extrapolation_tolerance = 0.25) const;

  /// The sample nearest to `t` (for payloads that must not be blended,
  /// e.g. camera frames). Returns nullopt when the stream is empty or the
  /// nearest sample is further than `tolerance` away.
  [[nodiscard]] std::optional<std::vector<float>> nearest(
      const std::string& stream, double t, double tolerance = 0.5) const;

  /// Sliding moving average over samples in [t - window, t]. Returns
  /// nullopt when the window holds no samples.
  [[nodiscard]] std::optional<std::vector<float>> smoothed(
      const std::string& stream, double t, double window_s) const;

  /// Align several streams onto a uniform grid [t0, t1) with step `dt`:
  /// each output row concatenates the (optionally smoothed, then
  /// interpolated) values of all streams at one grid point. Rows where any
  /// stream is unavailable are skipped; `grid_times` receives the grid
  /// time of every emitted row.
  [[nodiscard]] std::vector<std::vector<float>> aligned(
      const std::vector<std::string>& stream_names, double t0, double t1,
      double dt, double smoothing_window_s,
      std::vector<double>* grid_times = nullptr) const;

  /// Drop all tuples older than `cutoff` (bounded memory for streaming).
  void evict_before(double cutoff);

  [[nodiscard]] std::size_t total_tuples() const noexcept { return total_; }

 private:
  std::map<std::string, std::vector<TimedTuple>> data_;
  std::size_t total_{0};
};

}  // namespace darnet::collection
