// Centralized controller (Sections 3.2 / 4.1).
//
// Responsibilities, per the paper: aggregate/smooth/align data received
// from the agents, maintain clock synchronisation (master-slave: the
// controller distributes its UTC every sync period), and decide where data
// is processed (local vs remote; the deployed system ships everything to a
// remote server, optionally down-sampled for privacy).
#pragma once

#include <map>
#include <optional>

#include "collection/link.hpp"
#include "collection/messages.hpp"
#include "collection/store.hpp"

namespace darnet::collection {

enum class ProcessingMode { kLocal, kRemote };

struct ControllerConfig {
  /// "this synchronization process is repeated every 5 seconds" (§4.1).
  double clock_sync_period_s = 5.0;
  /// Sliding moving-average window applied during normalization.
  double smoothing_window_s = 0.2;
  /// Grid step for aligned output (4 Hz, the RNN's input rate).
  double alignment_dt_s = 0.25;
  ProcessingMode mode = ProcessingMode::kRemote;
};

class Controller {
 public:
  Controller(Simulation& sim, ControllerConfig config);

  /// Attach an agent's downlink (controller -> agent, used for clock sync).
  void attach_agent(std::uint32_t agent_id, VirtualLink& downlink);

  /// Begin the periodic clock-sync broadcast.
  void start();

  /// Deliver an agent -> controller payload (registration or data batch).
  void on_message(std::span<const std::uint8_t> bytes);

  /// Aligned, smoothed matrix over `streams` on a uniform grid -- the
  /// controller's hand-off format to the analytics engine.
  [[nodiscard]] std::vector<std::vector<float>> aligned_window(
      const std::vector<std::string>& streams, double t0, double t1,
      std::vector<double>* grid_times = nullptr) const;

  [[nodiscard]] const TimeSeriesStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] TimeSeriesStore& store() noexcept { return store_; }

  /// Streams registered by `agent_id`, or std::nullopt when the agent is
  /// unknown. Returned by value: the lookup-miss path is explicit in the
  /// type and no reference into the registration map can dangle across
  /// later registrations.
  [[nodiscard]] std::optional<std::vector<std::string>> streams_of(
      std::uint32_t agent_id) const;

  [[nodiscard]] std::uint64_t batches_received() const noexcept {
    return batches_;
  }
  [[nodiscard]] std::uint64_t tuples_received() const noexcept {
    return tuples_;
  }
  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return config_;
  }

  /// The master time stamped into sync messages (the controller's UTC; it
  /// is the reference, so it reads true simulation time).
  [[nodiscard]] double master_time() const noexcept { return sim_.now(); }

 private:
  void broadcast_clock_sync();

  Simulation& sim_;
  ControllerConfig config_;
  TimeSeriesStore store_;
  std::map<std::uint32_t, VirtualLink*> downlinks_;
  std::map<std::uint32_t, std::vector<std::string>> agent_streams_;
  std::uint64_t batches_{0};
  std::uint64_t tuples_{0};
  bool started_{false};
};

}  // namespace darnet::collection
