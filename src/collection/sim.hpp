// Discrete-event simulation driver for the data-collection middleware.
//
// The substrate (event queue, drifting device clocks) was promoted to
// darnet::sim so the fleet-scale simulator can share it (see
// docs/SIMULATION.md); this header keeps the historical collection-side
// names alive. The middleware logic -- polling, timestamping, batching,
// clock sync, alignment -- is unchanged and still runs on the same
// single-threaded, deterministically ordered event queue.
#pragma once

#include "sim/clock.hpp"
#include "sim/queue.hpp"

namespace darnet::collection {

using sim::SimTime;
using sim::Simulation;

/// Historical name: the per-device drifting clock is now sim::SimClock.
using DeviceClock = sim::SimClock;

}  // namespace darnet::collection
