// Discrete-event simulation driver for the data-collection middleware.
//
// The paper's deployment runs on two Android devices over Bluetooth/802.11;
// this substrate replaces the physical devices with simulated ones (see
// DESIGN.md) while keeping the middleware logic -- polling, timestamping,
// batching, clock sync, alignment -- identical. Everything is driven by a
// single-threaded event queue with deterministic ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

namespace darnet::collection {

/// Global ("true") simulation time in seconds. Only the simulation driver
/// sees it; devices see their own drifting clocks.
using SimTime = double;

class Simulation {
 public:
  /// Schedule `fn` at absolute time `at` (must not be in the past).
  void schedule(SimTime at, std::function<void()> fn);

  /// Schedule relative to the current time.
  void schedule_in(SimTime delay, std::function<void()> fn);

  /// Run events until the queue is empty or the horizon is reached.
  /// Advances now() to min(horizon, last event time).
  void run_until(SimTime horizon);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_{0.0};
  std::uint64_t next_seq_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A device-local clock with rate error (drift) and offset, as carried by
/// each collection agent. The paper: "the system clock is highly
/// susceptible to drift, [so] this synchronization process is repeated
/// every 5 seconds."
class DeviceClock {
 public:
  /// drift_ppm: rate error in parts-per-million (e.g. +200 means the local
  /// clock gains 200 us per true second). initial_offset: starting error.
  explicit DeviceClock(double drift_ppm = 0.0, double initial_offset = 0.0)
      : rate_(1.0 + drift_ppm * 1e-6), offset_(initial_offset) {}

  /// The device's reading of its own clock at true time `true_now`.
  [[nodiscard]] double read(SimTime true_now) const noexcept {
    return true_now * rate_ + offset_;
  }

  /// Slam the clock so that read(true_now) == new_local (what an agent does
  /// when it receives the master's UTC plus the latency constant).
  void set(SimTime true_now, double new_local) noexcept {
    offset_ = new_local - true_now * rate_;
  }

  /// Signed error vs true time at `true_now`.
  [[nodiscard]] double error(SimTime true_now) const noexcept {
    return read(true_now) - true_now;
  }

 private:
  double rate_;
  double offset_;
};

}  // namespace darnet::collection
