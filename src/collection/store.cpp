#include "collection/store.hpp"

#include <cmath>
#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace darnet::collection {

namespace {
bool tuple_before(const TimedTuple& a, double t) { return a.timestamp < t; }
}  // namespace

void TimeSeriesStore::append(const std::string& stream, TimedTuple tuple) {
  if (tuple.values.empty()) {
    throw std::invalid_argument("TimeSeriesStore::append: empty tuple");
  }
  auto& series = data_[stream];
  if (!series.empty() && !series.back().values.empty() &&
      series.back().values.size() != tuple.values.size()) {
    throw std::invalid_argument(
        "TimeSeriesStore::append: tuple width changed mid-stream");
  }
  // Fast path: in-order arrival.
  if (series.empty() || series.back().timestamp <= tuple.timestamp) {
    series.push_back(std::move(tuple));
  } else {
    auto it = std::lower_bound(series.begin(), series.end(), tuple.timestamp,
                               tuple_before);
    series.insert(it, std::move(tuple));
  }
  ++total_;
  DARNET_GAUGE_SET("collection/store_tuples", total_);
}

bool TimeSeriesStore::has_stream(const std::string& stream) const {
  return data_.contains(stream);
}

std::vector<std::string> TimeSeriesStore::streams() const {
  std::vector<std::string> names;
  names.reserve(data_.size());
  for (const auto& [name, _] : data_) names.push_back(name);
  return names;
}

std::size_t TimeSeriesStore::count(const std::string& stream) const {
  const auto it = data_.find(stream);
  return it == data_.end() ? 0 : it->second.size();
}

const std::vector<TimedTuple>& TimeSeriesStore::series(
    const std::string& stream) const {
  const auto it = data_.find(stream);
  if (it == data_.end()) {
    throw std::out_of_range("TimeSeriesStore::series: unknown stream " +
                            stream);
  }
  return it->second;
}

std::optional<std::vector<float>> TimeSeriesStore::interpolate(
    const std::string& stream, double t,
    double extrapolation_tolerance) const {
  const auto it = data_.find(stream);
  if (it == data_.end() || it->second.empty()) return std::nullopt;
  const auto& series = it->second;

  if (t <= series.front().timestamp) {
    if (series.front().timestamp - t > extrapolation_tolerance) {
      return std::nullopt;
    }
    return series.front().values;
  }
  if (t >= series.back().timestamp) {
    if (t - series.back().timestamp > extrapolation_tolerance) {
      return std::nullopt;
    }
    return series.back().values;
  }

  const auto upper =
      std::lower_bound(series.begin(), series.end(), t, tuple_before);
  const auto lower = upper - 1;
  const double dt = upper->timestamp - lower->timestamp;
  const double w = dt > 1e-12 ? (t - lower->timestamp) / dt : 0.0;
  std::vector<float> out(lower->values.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>((1.0 - w) * lower->values[i] +
                                w * upper->values[i]);
  }
  return out;
}

std::optional<std::vector<float>> TimeSeriesStore::nearest(
    const std::string& stream, double t, double tolerance) const {
  const auto it = data_.find(stream);
  if (it == data_.end() || it->second.empty()) return std::nullopt;
  const auto& series = it->second;
  const auto upper =
      std::lower_bound(series.begin(), series.end(), t, tuple_before);
  const TimedTuple* best = nullptr;
  if (upper != series.end()) best = &*upper;
  if (upper != series.begin()) {
    const auto lower = upper - 1;
    if (!best ||
        t - lower->timestamp < best->timestamp - t) {
      best = &*lower;
    }
  }
  if (!best || std::abs(best->timestamp - t) > tolerance) {
    return std::nullopt;
  }
  return best->values;
}

std::optional<std::vector<float>> TimeSeriesStore::smoothed(
    const std::string& stream, double t, double window_s) const {
  if (window_s <= 0.0) return interpolate(stream, t);
  const auto it = data_.find(stream);
  if (it == data_.end() || it->second.empty()) return std::nullopt;
  const auto& series = it->second;

  const auto first = std::lower_bound(series.begin(), series.end(),
                                      t - window_s, tuple_before);
  std::vector<double> acc;
  std::size_t n = 0;
  for (auto cur = first; cur != series.end() && cur->timestamp <= t; ++cur) {
    if (acc.empty()) acc.assign(cur->values.size(), 0.0);
    for (std::size_t i = 0; i < cur->values.size(); ++i) {
      acc[i] += cur->values[i];
    }
    ++n;
  }
  if (n == 0) return std::nullopt;
  std::vector<float> out(acc.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out[i] = static_cast<float>(acc[i] / static_cast<double>(n));
  }
  return out;
}

std::vector<std::vector<float>> TimeSeriesStore::aligned(
    const std::vector<std::string>& stream_names, double t0, double t1,
    double dt, double smoothing_window_s,
    std::vector<double>* grid_times) const {
  if (dt <= 0.0) {
    throw std::invalid_argument("TimeSeriesStore::aligned: dt must be > 0");
  }
  std::vector<std::vector<float>> rows;
  for (double t = t0; t < t1; t += dt) {
    std::vector<float> row;
    bool complete = true;
    for (const auto& name : stream_names) {
      auto values = smoothing_window_s > 0.0
                        ? smoothed(name, t, smoothing_window_s)
                        : interpolate(name, t);
      if (!values) {
        complete = false;
        break;
      }
      row.insert(row.end(), values->begin(), values->end());
    }
    if (complete) {
      rows.push_back(std::move(row));
      if (grid_times) grid_times->push_back(t);
    }
  }
  return rows;
}

void TimeSeriesStore::evict_before(double cutoff) {
  for (auto& [name, series] : data_) {
    const auto it =
        std::lower_bound(series.begin(), series.end(), cutoff, tuple_before);
    const auto removed = static_cast<std::size_t>(it - series.begin());
    series.erase(series.begin(), it);
    total_ -= removed;
  }
}

}  // namespace darnet::collection
