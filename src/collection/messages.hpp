// Wire-format messages exchanged between collection agents and the
// centralized controller (Section 4.1). Messages are serialised to bytes
// before entering a VirtualLink so that bandwidth accounting (the privacy
// evaluation's 9x/36x/144x reduction claims) reflects real payload sizes.
#pragma once

#include <string>
#include <vector>

#include "util/serialize.hpp"

namespace darnet::collection {

/// One sensor tuple: stream id, the agent's local timestamp, and a flat
/// value vector (3 floats for an accelerometer, W*H floats for a frame).
struct SensorReading {
  std::string stream;
  double local_timestamp{0.0};
  std::vector<float> values;
  /// Optional producer tag (the privacy distortion level rides here).
  std::uint32_t tag{0};
};

/// Batched readings pushed from an agent to the controller.
struct DataBatch {
  std::uint32_t agent_id{0};
  std::vector<SensorReading> readings;
};

/// Master -> agent clock distribution (the controller's UTC).
struct ClockSyncMessage {
  double master_time{0.0};
};

/// Agent -> controller registration handshake.
struct RegisterMessage {
  std::uint32_t agent_id{0};
  std::vector<std::string> streams;
};

enum class MessageKind : std::uint8_t {
  kBatch = 1,
  kClockSync = 2,
  kRegister = 3,
};

/// Inspect the kind tag without consuming the payload.
MessageKind peek_kind(std::span<const std::uint8_t> bytes);

void serialize(const SensorReading& reading, util::BinaryWriter& writer);
SensorReading deserialize_reading(util::BinaryReader& reader);

std::vector<std::uint8_t> encode(const DataBatch& batch);
DataBatch decode_batch(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode(const ClockSyncMessage& msg);
ClockSyncMessage decode_clock_sync(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode(const RegisterMessage& msg);
RegisterMessage decode_register(std::span<const std::uint8_t> bytes);

}  // namespace darnet::collection
