// Session recording and replay (Section 4.1: "The data is transferred and
// processed in an offline manner").
//
// The controller's inbound byte stream (registration + data batches) is
// appended to a recording together with arrival timestamps; a recording
// can be serialised to bytes / a file and later replayed into any
// Controller -- through a fresh Simulation, preserving inter-arrival
// timing -- or drained directly for offline (batch) processing. This is
// also the mechanism for building labelled datasets from collected
// sessions, the paper's stated use for the open-sourced recorder.
#pragma once

#include <string>
#include <vector>

#include "collection/controller.hpp"
#include "collection/sim.hpp"

namespace darnet::collection {

/// One captured controller-inbound message.
struct RecordedMessage {
  double arrival_time{0.0};
  std::vector<std::uint8_t> payload;
};

class SessionRecording {
 public:
  /// Append a message observed at `arrival_time` (monotone non-decreasing).
  void append(double arrival_time, std::vector<std::uint8_t> payload);

  [[nodiscard]] const std::vector<RecordedMessage>& messages() const noexcept {
    return messages_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return messages_.size(); }
  [[nodiscard]] bool empty() const noexcept { return messages_.empty(); }
  [[nodiscard]] double duration() const noexcept {
    return messages_.empty() ? 0.0 : messages_.back().arrival_time;
  }

  /// Deliver every message into `controller` immediately, in order
  /// (offline batch processing).
  void drain_into(Controller& controller) const;

  /// Schedule every message into `controller` at its original arrival
  /// time on `sim` (timing-faithful replay). The caller runs the sim.
  void replay_into(Simulation& sim, Controller& controller) const;

  void serialize(util::BinaryWriter& writer) const;
  static SessionRecording deserialize(util::BinaryReader& reader);

  void save(const std::string& path) const;
  static SessionRecording load(const std::string& path);

 private:
  std::vector<RecordedMessage> messages_;
};

/// A tee: wraps a controller handler so every inbound payload is both
/// recorded (with the simulation's current time) and delivered.
class RecordingTap {
 public:
  RecordingTap(Simulation& sim, Controller& controller,
               SessionRecording& recording)
      : sim_(&sim), controller_(&controller), recording_(&recording) {}

  void operator()(std::vector<std::uint8_t> payload) {
    recording_->append(sim_->now(), payload);
    controller_->on_message(payload);
  }

 private:
  Simulation* sim_;
  Controller* controller_;
  SessionRecording* recording_;
};

}  // namespace darnet::collection
