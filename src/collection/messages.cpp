#include "collection/messages.hpp"

#include <stdexcept>

namespace darnet::collection {

namespace {
// Message kind tags guard against decoding a payload as the wrong type.
constexpr auto kKindBatch = static_cast<std::uint8_t>(MessageKind::kBatch);
constexpr auto kKindClockSync =
    static_cast<std::uint8_t>(MessageKind::kClockSync);
constexpr auto kKindRegister =
    static_cast<std::uint8_t>(MessageKind::kRegister);
}  // namespace

MessageKind peek_kind(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) {
    throw std::invalid_argument("peek_kind: empty payload");
  }
  const auto kind = bytes.front();
  if (kind < kKindBatch || kind > kKindRegister) {
    throw std::invalid_argument("peek_kind: unknown message kind");
  }
  return static_cast<MessageKind>(kind);
}

void serialize(const SensorReading& reading, util::BinaryWriter& writer) {
  writer.write_string(reading.stream);
  writer.write_f64(reading.local_timestamp);
  writer.write_u32(reading.tag);
  writer.write_f32_span(reading.values);
}

SensorReading deserialize_reading(util::BinaryReader& reader) {
  SensorReading r;
  r.stream = reader.read_string();
  r.local_timestamp = reader.read_f64();
  r.tag = reader.read_u32();
  r.values = reader.read_f32_vector();
  return r;
}

std::vector<std::uint8_t> encode(const DataBatch& batch) {
  util::BinaryWriter w;
  w.write_u8(kKindBatch);
  w.write_u32(batch.agent_id);
  w.write_u32(static_cast<std::uint32_t>(batch.readings.size()));
  for (const auto& r : batch.readings) serialize(r, w);
  return w.take();
}

DataBatch decode_batch(std::span<const std::uint8_t> bytes) {
  util::BinaryReader r(bytes);
  if (r.read_u8() != kKindBatch) {
    throw std::invalid_argument("decode_batch: wrong message kind");
  }
  DataBatch b;
  b.agent_id = r.read_u32();
  const auto n = r.read_u32();
  b.readings.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    b.readings.push_back(deserialize_reading(r));
  }
  return b;
}

std::vector<std::uint8_t> encode(const ClockSyncMessage& msg) {
  util::BinaryWriter w;
  w.write_u8(kKindClockSync);
  w.write_f64(msg.master_time);
  return w.take();
}

ClockSyncMessage decode_clock_sync(std::span<const std::uint8_t> bytes) {
  util::BinaryReader r(bytes);
  if (r.read_u8() != kKindClockSync) {
    throw std::invalid_argument("decode_clock_sync: wrong message kind");
  }
  return ClockSyncMessage{r.read_f64()};
}

std::vector<std::uint8_t> encode(const RegisterMessage& msg) {
  util::BinaryWriter w;
  w.write_u8(kKindRegister);
  w.write_u32(msg.agent_id);
  w.write_u32(static_cast<std::uint32_t>(msg.streams.size()));
  for (const auto& s : msg.streams) w.write_string(s);
  return w.take();
}

RegisterMessage decode_register(std::span<const std::uint8_t> bytes) {
  util::BinaryReader r(bytes);
  if (r.read_u8() != kKindRegister) {
    throw std::invalid_argument("decode_register: wrong message kind");
  }
  RegisterMessage m;
  m.agent_id = r.read_u32();
  const auto n = r.read_u32();
  m.streams.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.streams.push_back(r.read_string());
  return m;
}

}  // namespace darnet::collection
