#include "collection/agent.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace darnet::collection {

CollectionAgent::CollectionAgent(Simulation& sim, AgentConfig config,
                                 VirtualLink& uplink)
    : sim_(sim),
      config_(config),
      uplink_(uplink),
      clock_(config.clock_drift_ppm, config.clock_initial_offset_s) {
  if (config.transmit_period_s <= 0.0) {
    throw std::invalid_argument("CollectionAgent: invalid transmit period");
  }
}

void CollectionAgent::add_sensor(std::unique_ptr<Sensor> sensor) {
  if (!sensor) throw std::invalid_argument("add_sensor: null sensor");
  if (started_) {
    throw std::logic_error("add_sensor: agent already started");
  }
  sensors_.push_back(std::move(sensor));
}

void CollectionAgent::start() {
  if (started_) throw std::logic_error("CollectionAgent::start: started twice");
  started_ = true;
  running_ = true;

  RegisterMessage reg;
  reg.agent_id = config_.agent_id;
  for (const auto& s : sensors_) reg.streams.push_back(s->stream());
  uplink_.send(encode(reg));

  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    sim_.schedule_in(sensors_[i]->poll_period_s(),
                     [this, i] { poll_sensor(i); });
  }
  sim_.schedule_in(config_.transmit_period_s, [this] { transmit(); });
}

void CollectionAgent::poll_sensor(std::size_t index) {
  if (!running_) return;
  Sensor& sensor = *sensors_[index];
  SensorReading reading;
  reading.stream = sensor.stream();
  reading.local_timestamp = clock_.read(sim_.now());
  reading.values = sensor.sample(sim_.now());
  // Approximate wire size: payload + timestamp/tag/stream-id framing.
  buffered_bytes_ +=
      reading.values.size() * sizeof(float) + reading.stream.size() + 16;
  buffer_.push_back(std::move(reading));
  DARNET_GAUGE_SET("collection/agent_buffer_bytes", buffered_bytes_);
  if (config_.max_batch_bytes > 0 &&
      buffered_bytes_ >= config_.max_batch_bytes) {
    flush();
  }
  sim_.schedule_in(sensor.poll_period_s(), [this, index] {
    poll_sensor(index);
  });
}

void CollectionAgent::flush() {
  if (buffer_.empty()) return;
  DataBatch batch;
  batch.agent_id = config_.agent_id;
  batch.readings = std::move(buffer_);
  buffer_.clear();
  buffered_bytes_ = 0;
  ++batches_sent_;
  DARNET_COUNTER_ADD("collection/agent_batches_flushed_total", 1);
  DARNET_GAUGE_SET("collection/agent_buffer_bytes", 0);
  uplink_.send(encode(batch));
}

void CollectionAgent::transmit() {
  if (!running_) return;
  flush();
  sim_.schedule_in(config_.transmit_period_s, [this] { transmit(); });
}

void CollectionAgent::on_message(std::span<const std::uint8_t> bytes) {
  // The only controller->agent message today is clock sync; the kind tag
  // inside decode_clock_sync() rejects anything else.
  const ClockSyncMessage sync = decode_clock_sync(bytes);
  clock_.set(sim_.now(), sync.master_time + config_.latency_compensation_s);
}

}  // namespace darnet::collection
