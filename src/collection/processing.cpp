#include "collection/processing.hpp"

#include <stdexcept>

namespace darnet::collection {

const char* placement_name(Placement placement) noexcept {
  switch (placement) {
    case Placement::kLocal:
      return "local";
    case Placement::kRemote:
      return "remote";
  }
  return "?";
}

NetworkEstimator::NetworkEstimator(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("NetworkEstimator: alpha must be in (0, 1]");
  }
}

void NetworkEstimator::observe(double rtt_s, double bandwidth_bps) {
  if (rtt_s < 0.0 || bandwidth_bps <= 0.0) {
    throw std::invalid_argument("NetworkEstimator: invalid measurement");
  }
  if (!observed_) {
    rtt_ = rtt_s;
    bandwidth_ = bandwidth_bps;
    observed_ = true;
    return;
  }
  rtt_ = (1.0 - alpha_) * rtt_ + alpha_ * rtt_s;
  bandwidth_ = (1.0 - alpha_) * bandwidth_ + alpha_ * bandwidth_bps;
}

void NetworkEstimator::observe_link(const VirtualLink& link) {
  const auto& stats = link.stats();
  const double latency = stats.mean_latency_s();
  if (latency <= 0.0) return;  // nothing delivered yet
  observe(2.0 * latency, link.config().bandwidth_bps);
}

double predicted_latency_s(Placement placement, const ComputeProfile& profile,
                           const NetworkEstimator& network) {
  if (placement == Placement::kLocal) return profile.local_inference_s;
  if (!network.has_estimate()) {
    throw std::logic_error("predicted_latency_s: no network estimate");
  }
  // Ship the payload, classify on the server, return the verdict (verdict
  // bytes are negligible; one extra one-way latency covers them).
  const double transfer = static_cast<double>(profile.remote_payload_bytes) *
                          8.0 / network.bandwidth_bps();
  return network.rtt_s() + transfer + profile.remote_inference_s;
}

ProcessingDecision::ProcessingDecision(ComputeProfile profile,
                                       double switch_margin)
    : profile_(profile), margin_(switch_margin) {
  if (switch_margin < 0.0 || switch_margin >= 1.0) {
    throw std::invalid_argument(
        "ProcessingDecision: margin must be in [0, 1)");
  }
}

Placement ProcessingDecision::decide(const NetworkEstimator& network) {
  if (!network.has_estimate()) {
    current_ = Placement::kLocal;
    return current_;
  }
  const double local = predicted_latency_s(Placement::kLocal, profile_,
                                           network);
  const double remote = predicted_latency_s(Placement::kRemote, profile_,
                                            network);
  // Hysteresis: the challenger must beat the incumbent by the margin.
  if (current_ == Placement::kLocal) {
    if (remote < local * (1.0 - margin_)) current_ = Placement::kRemote;
  } else {
    if (local < remote * (1.0 - margin_)) current_ = Placement::kLocal;
  }
  return current_;
}

}  // namespace darnet::collection
