// Processing-placement decision (Section 3.2, "Processing Decision").
//
// "In determining where the data should be processed, the controller can
// choose between a local and remote configuration. A remote server would
// have a greater amount of processing power ... However, under poor
// network conditions, the controller has the option of processing all
// data locally, albeit slower. ... the system must have a sense of
// processing capability, network bandwidth and latency."
//
// The decision model estimates the end-to-end latency of classifying one
// frame+window pair under each placement and picks the smaller, with a
// hysteresis margin so the placement does not flap under jittery
// measurements.
#pragma once

#include <cstddef>

#include "collection/link.hpp"

namespace darnet::collection {

enum class Placement { kLocal, kRemote };

[[nodiscard]] const char* placement_name(Placement placement) noexcept;

/// Static description of the two compute targets.
struct ComputeProfile {
  /// Seconds to classify one frame+window locally (edge device).
  double local_inference_s = 0.080;
  /// Seconds to classify one frame+window remotely (server).
  double remote_inference_s = 0.004;
  /// Payload shipped per classification when remote (bytes); depends on
  /// the privacy level (full frame vs down-sampled).
  std::size_t remote_payload_bytes = 48 * 48 + 1;
};

/// A smoothed view of the uplink, fed by periodic measurements.
class NetworkEstimator {
 public:
  /// `alpha`: EWMA weight of the newest measurement.
  explicit NetworkEstimator(double alpha = 0.3);

  /// Record one measurement (e.g. from VirtualLink stats deltas).
  void observe(double rtt_s, double bandwidth_bps);

  /// Ingest a link's cumulative stats directly (latency from the mean,
  /// bandwidth from the configured channel rate).
  void observe_link(const VirtualLink& link);

  [[nodiscard]] double rtt_s() const noexcept { return rtt_; }
  [[nodiscard]] double bandwidth_bps() const noexcept { return bandwidth_; }
  [[nodiscard]] bool has_estimate() const noexcept { return observed_; }

 private:
  double alpha_;
  double rtt_{0.0};
  double bandwidth_{0.0};
  bool observed_{false};
};

/// Predicted per-classification latency under a placement.
[[nodiscard]] double predicted_latency_s(Placement placement,
                                         const ComputeProfile& profile,
                                         const NetworkEstimator& network);

/// The controller's placement policy with hysteresis.
class ProcessingDecision {
 public:
  /// `switch_margin`: the challenger placement must be at least this
  /// fraction faster before the policy switches (default 20%).
  explicit ProcessingDecision(ComputeProfile profile,
                              double switch_margin = 0.2);

  /// Re-evaluate against the latest network estimate; returns the chosen
  /// placement. Without any network estimate the decision is local (no
  /// link to ship on).
  Placement decide(const NetworkEstimator& network);

  [[nodiscard]] Placement current() const noexcept { return current_; }
  [[nodiscard]] const ComputeProfile& profile() const noexcept {
    return profile_;
  }
  void set_profile(ComputeProfile profile) noexcept { profile_ = profile; }

 private:
  ComputeProfile profile_;
  double margin_;
  Placement current_{Placement::kLocal};
};

}  // namespace darnet::collection
