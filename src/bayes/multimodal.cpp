#include "bayes/multimodal.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace darnet::bayes {

MultiModalCombiner::MultiModalCombiner(int image_classes,
                                       std::vector<ModalityMap> maps,
                                       double laplace_alpha)
    : image_classes_(image_classes),
      maps_(std::move(maps)),
      alpha_(laplace_alpha) {
  if (image_classes < 2 || maps_.empty() || maps_.size() > 8 ||
      laplace_alpha <= 0.0) {
    throw std::invalid_argument("MultiModalCombiner: invalid configuration");
  }
  for (const auto& map : maps_) {
    if (map.modality_classes < 2 ||
        map.image_to_modality.size() !=
            static_cast<std::size_t>(image_classes)) {
      throw std::invalid_argument("MultiModalCombiner: bad modality map");
    }
    for (int m : map.image_to_modality) {
      if (m < 0 || m >= map.modality_classes) {
        throw std::invalid_argument(
            "MultiModalCombiner: map target out of range");
      }
    }
  }
  configs_ = 1u << maps_.size();
  cpt_.assign(static_cast<std::size_t>(image_classes) * configs_, 0.5);
}

ModalityMap MultiModalCombiner::identity_map(int classes) {
  ModalityMap map;
  map.modality_classes = classes;
  map.image_to_modality.resize(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    map.image_to_modality[static_cast<std::size_t>(c)] = c;
  }
  return map;
}

std::size_t MultiModalCombiner::cpt_index(int c, unsigned config) const {
  return static_cast<std::size_t>(c) * configs_ + config;
}

void MultiModalCombiner::check_inputs(
    std::span<const Tensor> modality_probs) const {
  if (modality_probs.size() != maps_.size()) {
    throw std::invalid_argument("MultiModalCombiner: modality count mismatch");
  }
  const int n = modality_probs.empty() ? 0 : modality_probs[0].dim(0);
  for (std::size_t i = 0; i < maps_.size(); ++i) {
    if (modality_probs[i].rank() != 2 ||
        modality_probs[i].dim(0) != n ||
        modality_probs[i].dim(1) != maps_[i].modality_classes) {
      throw std::invalid_argument(
          "MultiModalCombiner: bad distribution for modality " +
          std::to_string(i));
    }
  }
}

void MultiModalCombiner::fit(std::span<const Tensor> modality_probs,
                             std::span<const int> labels) {
  check_inputs(modality_probs);
  const int n = modality_probs[0].dim(0);
  if (labels.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("MultiModalCombiner::fit: label mismatch");
  }

  // Soft counts over [class][config][child], as in the 2-parent combiner.
  std::vector<double> counts(
      static_cast<std::size_t>(image_classes_) * configs_ * 2, 0.0);
  std::vector<double> evidence(maps_.size());
  for (int i = 0; i < n; ++i) {
    const int y_true = labels[static_cast<std::size_t>(i)];
    if (y_true < 0 || y_true >= image_classes_) {
      throw std::invalid_argument(
          "MultiModalCombiner::fit: label out of range");
    }
    for (int c = 0; c < image_classes_; ++c) {
      for (std::size_t m = 0; m < maps_.size(); ++m) {
        const int mc =
            maps_[m].image_to_modality[static_cast<std::size_t>(c)];
        evidence[m] = modality_probs[m].at(i, mc);
      }
      const int y = (y_true == c) ? 1 : 0;
      for (unsigned config = 0; config < configs_; ++config) {
        double w = 1.0;
        for (std::size_t m = 0; m < maps_.size(); ++m) {
          const bool on = (config >> m) & 1u;
          w *= on ? evidence[m] : 1.0 - evidence[m];
        }
        counts[(cpt_index(c, config)) * 2 + static_cast<std::size_t>(y)] += w;
      }
    }
  }

  for (int c = 0; c < image_classes_; ++c) {
    for (unsigned config = 0; config < configs_; ++config) {
      const double neg = counts[cpt_index(c, config) * 2];
      const double pos = counts[cpt_index(c, config) * 2 + 1];
      cpt_[cpt_index(c, config)] = (pos + alpha_) / (pos + neg + 2.0 * alpha_);
    }
  }
  trained_ = true;
}

Tensor MultiModalCombiner::combine(
    std::span<const Tensor> modality_probs) const {
  if (!trained_) {
    throw std::logic_error("MultiModalCombiner: combine before fit");
  }
  check_inputs(modality_probs);
  const int n = modality_probs[0].dim(0);

  Tensor out({n, image_classes_});
  std::vector<double> evidence(maps_.size());
  for (int i = 0; i < n; ++i) {
    double total = 0.0;
    for (int c = 0; c < image_classes_; ++c) {
      for (std::size_t m = 0; m < maps_.size(); ++m) {
        const int mc =
            maps_[m].image_to_modality[static_cast<std::size_t>(c)];
        evidence[m] = modality_probs[m].at(i, mc);
      }
      double score = 0.0;
      for (unsigned config = 0; config < configs_; ++config) {
        double w = 1.0;
        for (std::size_t m = 0; m < maps_.size(); ++m) {
          const bool on = (config >> m) & 1u;
          w *= on ? evidence[m] : 1.0 - evidence[m];
        }
        score += cpt_[cpt_index(c, config)] * w;
      }
      out.at(i, c) = static_cast<float>(score);
      total += score;
    }
    if (total <= 0.0) {
      for (int c = 0; c < image_classes_; ++c) {
        out.at(i, c) = 1.0f / static_cast<float>(image_classes_);
      }
    } else {
      for (int c = 0; c < image_classes_; ++c) {
        out.at(i, c) = static_cast<float>(out.at(i, c) / total);
      }
    }
  }
  return out;
}

std::vector<int> MultiModalCombiner::predict(
    std::span<const Tensor> modality_probs) const {
  const Tensor fused = combine(modality_probs);
  std::vector<int> preds(static_cast<std::size_t>(fused.dim(0)));
  for (int i = 0; i < fused.dim(0); ++i) {
    preds[static_cast<std::size_t>(i)] = tensor::argmax(std::span<const float>(
        fused.data() + static_cast<std::size_t>(i) * image_classes_,
        static_cast<std::size_t>(image_classes_)));
  }
  return preds;
}

double MultiModalCombiner::cpt(int image_class, unsigned config) const {
  if (image_class < 0 || image_class >= image_classes_ ||
      config >= configs_) {
    throw std::out_of_range("MultiModalCombiner::cpt: out of range");
  }
  return cpt_[cpt_index(image_class, config)];
}

}  // namespace darnet::bayes
