#include "bayes/combiner.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace darnet::bayes {

ClassMap::ClassMap(std::vector<int> image_to_imu, int imu_classes)
    : map_(std::move(image_to_imu)), imu_classes_(imu_classes) {
  if (map_.empty() || imu_classes <= 0) {
    throw std::invalid_argument("ClassMap: empty mapping");
  }
  for (int m : map_) {
    if (m < 0 || m >= imu_classes) {
      throw std::invalid_argument("ClassMap: target class out of range");
    }
  }
}

int ClassMap::map(int image_class) const {
  if (image_class < 0 || image_class >= image_classes()) {
    throw std::out_of_range("ClassMap::map: class out of range");
  }
  return map_[static_cast<std::size_t>(image_class)];
}

ClassMap ClassMap::darnet_default() {
  // Image classes: 0 normal, 1 talking, 2 texting, 3 eating/drinking,
  // 4 hair/makeup, 5 reaching. IMU classes: 0 normal, 1 talking, 2 texting.
  return ClassMap({0, 1, 2, 0, 0, 0}, 3);
}

BayesianCombiner::BayesianCombiner(ClassMap class_map, double laplace_alpha)
    : map_(std::move(class_map)),
      alpha_(laplace_alpha),
      cpt_(static_cast<std::size_t>(map_.image_classes()) * 4, 0.5) {
  if (laplace_alpha <= 0.0) {
    throw std::invalid_argument("BayesianCombiner: alpha must be positive");
  }
}

std::size_t BayesianCombiner::cpt_index(int c, int a, int b) const {
  return (static_cast<std::size_t>(c) * 2 + static_cast<std::size_t>(a)) * 2 +
         static_cast<std::size_t>(b);
}

void BayesianCombiner::check_inputs(const Tensor& p_image,
                                    const Tensor& p_imu) const {
  if (p_image.rank() != 2 || p_image.dim(1) != map_.image_classes()) {
    throw std::invalid_argument("BayesianCombiner: bad image distribution");
  }
  if (p_imu.rank() != 2 || p_imu.dim(1) != map_.imu_classes()) {
    throw std::invalid_argument("BayesianCombiner: bad IMU distribution");
  }
  if (p_image.dim(0) != p_imu.dim(0)) {
    throw std::invalid_argument("BayesianCombiner: batch size mismatch");
  }
}

void BayesianCombiner::fit(const Tensor& p_image, const Tensor& p_imu,
                           std::span<const int> labels) {
  check_inputs(p_image, p_imu);
  const int n = p_image.dim(0);
  const int ci = map_.image_classes();
  const int cb = map_.imu_classes();
  if (labels.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("BayesianCombiner::fit: label count mismatch");
  }

  // counts[c][a][b][y]: per-class parent/child co-occurrence over the
  // training data. Parent states are counted *softly* -- each sample
  // contributes P(A=a)P(B=b) mass to every (a, b) cell -- so the CPTs
  // retain the models' confidence instead of collapsing it to argmax
  // verdicts (which measurably hurts fused accuracy; see
  // bench_ablation_combiner).
  std::vector<double> counts(static_cast<std::size_t>(ci) * 8, 0.0);
  for (int i = 0; i < n; ++i) {
    const int y_true = labels[i];
    if (y_true < 0 || y_true >= ci) {
      throw std::invalid_argument("BayesianCombiner::fit: label out of range");
    }
    const float* pa = p_image.data() + static_cast<std::size_t>(i) * ci;
    const float* pb = p_imu.data() + static_cast<std::size_t>(i) * cb;
    for (int c = 0; c < ci; ++c) {
      const double ea = pa[c];
      const double eb = pb[map_.map(c)];
      const int y = (y_true == c) ? 1 : 0;
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          const double w = (a ? ea : 1.0 - ea) * (b ? eb : 1.0 - eb);
          counts[cpt_index(c, a, b) * 2 + static_cast<std::size_t>(y)] += w;
        }
      }
    }
  }

  for (int c = 0; c < ci; ++c) {
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const double neg = counts[cpt_index(c, a, b) * 2];
        const double pos = counts[cpt_index(c, a, b) * 2 + 1];
        cpt_[cpt_index(c, a, b)] =
            (pos + alpha_) / (pos + neg + 2.0 * alpha_);
      }
    }
  }
  trained_ = true;
}

double BayesianCombiner::cpt(int image_class, bool cnn_positive,
                             bool imu_positive) const {
  if (image_class < 0 || image_class >= map_.image_classes()) {
    throw std::out_of_range("BayesianCombiner::cpt: class out of range");
  }
  return cpt_[cpt_index(image_class, cnn_positive ? 1 : 0,
                        imu_positive ? 1 : 0)];
}

Tensor BayesianCombiner::combine(const Tensor& p_image,
                                 const Tensor& p_imu) const {
  if (!trained_) {
    throw std::logic_error("BayesianCombiner: combine before fit");
  }
  check_inputs(p_image, p_imu);
  const int n = p_image.dim(0);
  const int ci = map_.image_classes();
  const int cb = map_.imu_classes();

  Tensor out({n, ci});
  for (int i = 0; i < n; ++i) {
    const float* pa = p_image.data() + static_cast<std::size_t>(i) * ci;
    const float* pb = p_imu.data() + static_cast<std::size_t>(i) * cb;
    float* orow = out.data() + static_cast<std::size_t>(i) * ci;
    double total = 0.0;
    for (int c = 0; c < ci; ++c) {
      // Soft evidence on both parents, marginalised through the CPT:
      // P(c) = sum_{a,b} P(child=1 | a, b) P(A=a) P(B=b).
      const double ea = pa[c];
      const double eb = pb[map_.map(c)];
      double score = 0.0;
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          const double wa = a ? ea : 1.0 - ea;
          const double wb = b ? eb : 1.0 - eb;
          score += cpt_[cpt_index(c, a, b)] * wa * wb;
        }
      }
      orow[c] = static_cast<float>(score);
      total += score;
    }
    if (total <= 0.0) {
      // Degenerate CPTs: fall back to a uniform distribution.
      for (int c = 0; c < ci; ++c) orow[c] = 1.0f / static_cast<float>(ci);
    } else {
      for (int c = 0; c < ci; ++c) {
        orow[c] = static_cast<float>(orow[c] / total);
      }
    }
  }
  return out;
}

std::vector<int> BayesianCombiner::predict(const Tensor& p_image,
                                           const Tensor& p_imu) const {
  Tensor fused = combine(p_image, p_imu);
  const int n = fused.dim(0), c = fused.dim(1);
  std::vector<int> preds(n);
  for (int i = 0; i < n; ++i) {
    preds[i] = tensor::argmax(std::span<const float>(
        fused.data() + static_cast<std::size_t>(i) * c,
        static_cast<std::size_t>(c)));
  }
  return preds;
}

void BayesianCombiner::serialize(util::BinaryWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(map_.image_classes()));
  writer.write_u32(static_cast<std::uint32_t>(map_.imu_classes()));
  for (int c = 0; c < map_.image_classes(); ++c) {
    writer.write_u32(static_cast<std::uint32_t>(map_.map(c)));
  }
  writer.write_f64(alpha_);
  writer.write_u8(trained_ ? 1 : 0);
  for (double v : cpt_) writer.write_f64(v);
}

BayesianCombiner BayesianCombiner::deserialize(util::BinaryReader& reader) {
  const int ci = static_cast<int>(reader.read_u32());
  const int cb = static_cast<int>(reader.read_u32());
  std::vector<int> mapping(ci);
  for (auto& m : mapping) m = static_cast<int>(reader.read_u32());
  const double alpha = reader.read_f64();
  BayesianCombiner combiner(ClassMap(std::move(mapping), cb), alpha);
  combiner.trained_ = reader.read_u8() != 0;
  for (auto& v : combiner.cpt_) v = reader.read_f64();
  return combiner;
}

Tensor fuse(FusionRule rule, const ClassMap& map, const Tensor& p_image,
            const Tensor& p_imu) {
  if (p_image.rank() != 2 || p_imu.rank() != 2 ||
      p_image.dim(0) != p_imu.dim(0) ||
      p_image.dim(1) != map.image_classes() ||
      p_imu.dim(1) != map.imu_classes()) {
    throw std::invalid_argument("fuse: input shape mismatch");
  }
  const int n = p_image.dim(0), ci = map.image_classes();
  Tensor out({n, ci});
  for (int i = 0; i < n; ++i) {
    const float* pa = p_image.data() + static_cast<std::size_t>(i) * ci;
    const float* pb = p_imu.data() + static_cast<std::size_t>(i) * map.imu_classes();
    float* orow = out.data() + static_cast<std::size_t>(i) * ci;
    double total = 0.0;
    for (int c = 0; c < ci; ++c) {
      const double a = pa[c];
      const double b = pb[map.map(c)];
      double v = 0.0;
      switch (rule) {
        case FusionRule::kMean:
          v = 0.5 * (a + b);
          break;
        case FusionRule::kProduct:
          v = a * b;
          break;
        case FusionRule::kMax:
          v = std::max(a, b);
          break;
      }
      orow[c] = static_cast<float>(v);
      total += v;
    }
    if (total > 0.0) {
      for (int c = 0; c < ci; ++c) {
        orow[c] = static_cast<float>(orow[c] / total);
      }
    }
  }
  return out;
}

}  // namespace darnet::bayes
