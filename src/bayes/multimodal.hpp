// N-modality generalisation of the per-class Bayesian-network combiner.
//
// The paper's conclusion: "our ensemble learning approach is extensible to
// adding more modalities". This module implements that extension: each
// image class gets a Bayesian network with one parent per modality and a
// single child; CPTs over the 2^M parent configurations are estimated
// with soft counts, and inference marginalises the soft evidence of every
// modality. With M = 2 it reduces exactly to the deployed combiner.
#pragma once

#include <span>
#include <vector>

#include "bayes/combiner.hpp"

namespace darnet::bayes {

/// How one modality's class space projects onto the image classes.
struct ModalityMap {
  /// image class -> this modality's class index.
  std::vector<int> image_to_modality;
  int modality_classes{0};
};

class MultiModalCombiner {
 public:
  /// `maps[i]` describes modality i. The image model itself participates
  /// as a modality with the identity map (use identity_map()).
  MultiModalCombiner(int image_classes, std::vector<ModalityMap> maps,
                     double laplace_alpha = 1.0);

  [[nodiscard]] static ModalityMap identity_map(int classes);

  /// Fit CPTs. `modality_probs[i]` is modality i's [N, C_i] distribution
  /// over its own class space; labels are true image classes.
  void fit(std::span<const Tensor> modality_probs,
           std::span<const int> labels);

  /// Fused, normalised distribution over image classes [N, C_img].
  [[nodiscard]] Tensor combine(std::span<const Tensor> modality_probs) const;

  [[nodiscard]] std::vector<int> predict(
      std::span<const Tensor> modality_probs) const;

  [[nodiscard]] int modality_count() const noexcept {
    return static_cast<int>(maps_.size());
  }
  [[nodiscard]] int image_classes() const noexcept { return image_classes_; }
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// P(class present | parent configuration bits). Bit i of `config` is
  /// modality i's verdict.
  [[nodiscard]] double cpt(int image_class, unsigned config) const;

 private:
  void check_inputs(std::span<const Tensor> modality_probs) const;
  [[nodiscard]] std::size_t cpt_index(int c, unsigned config) const;

  int image_classes_;
  std::vector<ModalityMap> maps_;
  double alpha_;
  unsigned configs_;  // 2^M
  bool trained_{false};
  std::vector<double> cpt_;  // [C_img][2^M]
};

}  // namespace darnet::bayes
