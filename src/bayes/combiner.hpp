// Bayesian-network ensemble combiner (Section 4.2, "Ensemble Learning").
//
// The CNN and RNN emit probability distributions over *different* class
// sets: six image classes vs three IMU classes (classes without phone use
// collapse to "normal driving" on the IMU side, per Table 1). The paper
// assigns each image class its own small Bayesian network: two parent
// nodes (the CNN's verdict for the class and the RNN's verdict for the
// mapped class) and one child node (class present). Conditional
// probability tables are estimated from true-positive counts on training
// data; at inference the parents receive the models' output probabilities
// as soft evidence and the per-class posteriors are normalised into the
// final distribution.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/serialize.hpp"

namespace darnet::bayes {

using tensor::Tensor;

/// Maps primary (image) classes onto secondary (IMU) classes. Surjective;
/// several image classes may share one IMU class.
class ClassMap {
 public:
  ClassMap(std::vector<int> image_to_imu, int imu_classes);

  [[nodiscard]] int map(int image_class) const;
  [[nodiscard]] int image_classes() const noexcept {
    return static_cast<int>(map_.size());
  }
  [[nodiscard]] int imu_classes() const noexcept { return imu_classes_; }

  /// The mapping used by DarNet's deployment (Table 1): classes
  /// {normal, talking, texting} keep their own IMU class; classes
  /// {eating/drinking, hair/makeup, reaching} map to IMU "normal".
  static ClassMap darnet_default();

 private:
  std::vector<int> map_;
  int imu_classes_;
};

/// Per-class two-parent Bayesian networks with CPTs learned from counts.
class BayesianCombiner {
 public:
  BayesianCombiner(ClassMap class_map, double laplace_alpha = 1.0);

  /// Learn CPTs from the training-set outputs of both models.
  /// p_image: [N, C_img] CNN probabilities; p_imu: [N, C_imu] RNN (or SVM)
  /// probabilities; labels: true image classes.
  void fit(const Tensor& p_image, const Tensor& p_imu,
           std::span<const int> labels);

  /// Fused, normalised distribution over image classes: [N, C_img].
  [[nodiscard]] Tensor combine(const Tensor& p_image,
                               const Tensor& p_imu) const;

  [[nodiscard]] std::vector<int> predict(const Tensor& p_image,
                                         const Tensor& p_imu) const;

  /// P(class c present | cnn_says_c = a, rnn_says_mapped_c = b).
  [[nodiscard]] double cpt(int image_class, bool cnn_positive,
                           bool imu_positive) const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }
  [[nodiscard]] const ClassMap& class_map() const noexcept { return map_; }

  void serialize(util::BinaryWriter& writer) const;
  static BayesianCombiner deserialize(util::BinaryReader& reader);

 private:
  [[nodiscard]] std::size_t cpt_index(int c, int a, int b) const;
  void check_inputs(const Tensor& p_image, const Tensor& p_imu) const;

  ClassMap map_;
  double alpha_;
  bool trained_{false};
  std::vector<double> cpt_;  // [C_img][2][2] -> P(child=1 | a, b)
};

/// Simple fusion rules used as ablation baselines against the BN combiner.
enum class FusionRule { kMean, kProduct, kMax };

/// Fuse two modality distributions without learned CPTs. The IMU
/// distribution is expanded through the class map before fusing.
[[nodiscard]] Tensor fuse(FusionRule rule, const ClassMap& map,
                          const Tensor& p_image, const Tensor& p_imu);

}  // namespace darnet::bayes
