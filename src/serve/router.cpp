#include "serve/router.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace darnet::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::vector<std::unique_ptr<Server>> build_shards(
    Router::Snapshot& snapshot, const RouterConfig& config) {
  if (config.shards < 1) {
    throw std::invalid_argument("serve::Router: shards must be >= 1");
  }
  if (config.virtual_nodes < 1) {
    throw std::invalid_argument(
        "serve::Router: virtual_nodes must be >= 1");
  }
  if (snapshot.replicas.size() != static_cast<std::size_t>(config.shards)) {
    throw std::invalid_argument(
        "serve::Router: snapshot must carry one replica per shard");
  }
  for (std::size_t i = 0; i < snapshot.replicas.size(); ++i) {
    if (!snapshot.replicas[i]) {
      throw std::invalid_argument(
          "serve::Router: snapshot replica must not be null");
    }
    for (std::size_t j = i + 1; j < snapshot.replicas.size(); ++j) {
      if (snapshot.replicas[i] == snapshot.replicas[j]) {
        // Models keep forward caches; two shards batching into one
        // replica concurrently would race (each shard only serialises
        // on its *own* exec lock).
        throw std::invalid_argument(
            "serve::Router: shards must not share an ensemble replica");
      }
    }
  }
  for (const auto& [tenant, quota] : config.quotas) {
    (void)tenant;
    if (quota.capacity < 1.0 || quota.refill_per_s < 0.0) {
      throw std::invalid_argument(
          "serve::Router: tenant quota needs capacity >= 1 and "
          "refill_per_s >= 0");
    }
  }
  std::vector<std::unique_ptr<Server>> shards;
  shards.reserve(snapshot.replicas.size());
  for (auto& replica : snapshot.replicas) {
    shards.push_back(
        std::make_unique<Server>(std::move(replica), config.shard));
  }
  return shards;
}

[[nodiscard]] std::vector<std::pair<std::uint64_t, int>> build_ring(
    const RouterConfig& config) {
  std::vector<std::pair<std::uint64_t, int>> ring;
  ring.reserve(static_cast<std::size_t>(config.shards) *
               static_cast<std::size_t>(config.virtual_nodes));
  for (int shard = 0; shard < config.shards; ++shard) {
    for (int node = 0; node < config.virtual_nodes; ++node) {
      // Double-hash the ring into its own domain. The raw (shard, node)
      // key for shard 0 is the integer `node` itself, so a single
      // route_hash would put every session id below virtual_nodes
      // bit-exactly on a shard-0 point -- the whole small-id key space
      // would collapse onto one shard.
      const std::uint64_t point = route_hash(route_hash(
          (static_cast<std::uint64_t>(shard) << 32) |
          static_cast<std::uint64_t>(node)));
      ring.emplace_back(point, shard);
    }
  }
  std::sort(ring.begin(), ring.end());
  return ring;
}

/// An Admit::kRejected submission whose future is already resolved --
/// the router's quota door keeps the always-resolved future contract.
[[nodiscard]] Server::Submission rejected_submission() {
  std::promise<Response> promise;
  Server::Submission out;
  out.admit = Admit::kRejected;
  out.response = promise.get_future();
  Response response;
  response.status = Status::kRejected;
  promise.set_value(std::move(response));
  return out;
}

}  // namespace

Router::Router(Snapshot snapshot, RouterConfig config)
    : config_(std::move(config)),
      shards_(build_shards(snapshot, config_)),
      ring_(build_ring(config_)) {
  version_ = snapshot.version;
  DARNET_GAUGE_SET("route/shards", static_cast<std::int64_t>(shards()));
}

Router::~Router() { drain(); }

Clock::time_point Router::clock_now() const noexcept {
  return config_.shard.time_source ? config_.shard.time_source->now()
                                   : Clock::now();
}

int Router::shard_for(std::uint64_t session_id) const noexcept {
  const std::uint64_t point = route_hash(session_id);
  // First ring node at or after the hashed point, wrapping to the start
  // (the classic consistent-hash successor walk, O(log ring)).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<std::uint64_t, int>& node, std::uint64_t key) {
        return node.first < key;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

// REQUIRES: mu_ held. Continuous refill keeps the bucket a pure
// function of (quota, touch times), so under a virtual TimeSource the
// admit/reject sequence is bit-reproducible.
bool Router::charge_tenant(std::uint64_t tenant_id) {
  DARNET_ASSERT_HELD(mu_);
  const auto quota = config_.quotas.find(tenant_id);
  if (quota == config_.quotas.end()) return true;
  const auto now = clock_now();
  auto [it, fresh] = buckets_.try_emplace(tenant_id);
  Bucket& bucket = it->second;
  if (fresh) {
    bucket.tokens = quota->second.capacity;  // start with a full burst
    bucket.refilled = now;
  } else if (now > bucket.refilled) {
    const double elapsed_s =
        std::chrono::duration<double>(now - bucket.refilled).count();
    bucket.tokens = std::min(
        quota->second.capacity,
        bucket.tokens + elapsed_s * quota->second.refill_per_s);
    bucket.refilled = now;
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

Server::Submission Router::submit(engine::ClassifyRequest request) {
  bool admitted;
  {
    sync::Lock lock(mu_);
    admitted = charge_tenant(request.tenant_id);
    if (admitted) {
      ++routed_;
    } else {
      ++quota_rejected_;
    }
  }
  // Promise resolution and shard admission both run with route/state
  // released: the quota door adds no lock nesting on the request path.
  if (!admitted) {
    DARNET_COUNTER_ADD("route/quota_rejected_total", 1);
    return rejected_submission();
  }
  DARNET_COUNTER_ADD("route/requests_routed_total", 1);
  const int shard_index = shard_for(request.session_id);
  return shards_[static_cast<std::size_t>(shard_index)]->submit(
      std::move(request));
}

void Router::swap_snapshot(Snapshot next) {
  if (next.replicas.size() != shards_.size()) {
    throw std::invalid_argument(
        "serve::Router::swap_snapshot: snapshot must carry one replica "
        "per shard");
  }
  for (const auto& replica : next.replicas) {
    if (!replica) {
      throw std::invalid_argument(
          "serve::Router::swap_snapshot: replica must not be null");
    }
  }
  sync::Lock lock(mu_);
  if (next.version <= version_) {
    throw std::invalid_argument(
        "serve::Router::swap_snapshot: version must increase "
        "monotonically (stale rollout?)");
  }
  // The RCU write side: flip every shard's served-ensemble pointer under
  // route/state (recording the route/state -> serve/admission lock-order
  // edge). In-flight batches keep serving the replica they snapshotted.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    (void)shards_[i]->swap_ensemble(std::move(next.replicas[i]));
  }
  version_ = next.version;
  ++swaps_;
  DARNET_COUNTER_ADD("route/snapshot_swaps_total", 1);
}

std::uint64_t Router::snapshot_version() const {
  sync::Lock lock(mu_);
  return version_;
}

void Router::drain() {
  for (const auto& shard : shards_) shard->drain();
}

Server& Router::shard(int index) {
  if (index < 0 || index >= shards()) {
    throw std::out_of_range("serve::Router::shard: index out of range");
  }
  return *shards_[static_cast<std::size_t>(index)];
}

Router::Stats Router::stats() const {
  Stats out;
  {
    sync::Lock lock(mu_);
    out.routed = routed_;
    out.quota_rejected = quota_rejected_;
    out.snapshot_swaps = swaps_;
  }
  out.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.per_shard.push_back(shard->stats());
  }
  return out;
}

}  // namespace darnet::serve
