// darnet::serve -- the micro-batching multi-session inference server.
//
// The paper's deployment model is a centralized analytics engine serving
// *many* vehicles at once ("the controller forwards data to a remote
// server", §3.2-3.3). This module is that serving tier: it multiplexes
// concurrent driver sessions onto one EnsembleClassifier by coalescing
// queued single-frame requests into [B, ...] batches for a fused ensemble
// pass, then scattering the per-row distributions back through per-session
// streaming state (engine::SessionState -- the same EWMA + debounce
// recurrence StreamingClassifier uses, which is what makes served verdict
// sequences bit-identical to the single-threaded reference).
//
// Architecture (see DESIGN.md "Serving model"):
//   * Admission: a bounded FIFO queue with explicit backpressure. submit()
//     returns Admit::kAccepted, Admit::kShedOldest (admitted by dropping
//     the oldest queued request, whose future completes with
//     Status::kShed) or Admit::kRejected (queue full with shedding
//     disabled, or server draining). Every future is always completed --
//     admission verdicts, timeouts, shed and drain all resolve it.
//   * Micro-batching: worker ServiceThreads (src/parallel) pop up to
//     `max_batch` requests, flushing early once the oldest has waited
//     `max_delay_us` -- whichever comes first. The fused pass itself runs
//     on the process-wide parallel::ThreadPool via the engine's batched
//     entry points.
//   * Robustness: per-request absolute deadlines (expired requests get
//     Status::kTimeout without inference), graceful drain() on shutdown
//     (stops admission, flushes the queue, joins workers, leaves no
//     pending futures), and a degraded mode with watermark hysteresis:
//     when queue depth reaches `degrade_high_watermark` batches switch to
//     the cheap single-modality path (EnsembleClassifier::
//     classify_batch_degraded) until depth falls back to
//     `degrade_low_watermark`.
//   * Determinism: batches are formed FIFO under one lock and their
//     session updates are applied in batch-ticket order, so each
//     session's verdict sequence equals StreamingClassifier fed the same
//     per-session inputs in the same order, regardless of batch
//     boundaries or worker count.
//
// Everything is instrumented with serve/* metrics and spans per the
// docs/OBSERVABILITY.md contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "parallel/pool.hpp"
#include "sync/sync.hpp"

namespace darnet::serve {

/// Synchronous admission verdict for one submit() call.
enum class Admit {
  kAccepted,    ///< queued within capacity
  kShedOldest,  ///< queued by shedding the oldest queued request
  kRejected,    ///< not queued (queue full with shedding off, or draining)
};

/// How the asynchronous side of a request resolved.
enum class Status {
  kOk,        ///< served; `result` is meaningful
  kTimeout,   ///< deadline expired while queued; no inference ran
  kShed,      ///< dropped by backpressure to admit a newer request
  kRejected,  ///< never admitted
};

[[nodiscard]] const char* admit_name(Admit admit) noexcept;
[[nodiscard]] const char* status_name(Status status) noexcept;

/// The clock the server reads for deadline triage and queue-latency
/// accounting. Production uses the default (std::chrono::steady_clock);
/// the fleet simulator injects one driven by virtual time so simulated
/// deadlines and the server's time math agree (a hidden wall-clock read
/// would make simulated deadline behaviour nondeterministic -- see
/// docs/SIMULATION.md "Determinism contract"). Implementations must be
/// thread-safe: workers and submitters read concurrently.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  [[nodiscard]] virtual std::chrono::steady_clock::time_point now()
      const noexcept = 0;
};

/// What a request's future resolves to.
struct Response {
  Status status{Status::kRejected};
  /// Valid when status == kOk; latency_us is populated for kOk and
  /// kTimeout (time spent queued).
  engine::ClassifyResult result;
};

/// Per-shard serving parameters: everything one micro-batching Server
/// needs. Router-level policy (shard count, hash ring, per-tenant quotas,
/// snapshot versioning) lives in serve::RouterConfig (router.hpp) -- the
/// PR-9 redesign split the old monolithic ServerConfig along that seam.
struct ShardConfig {
  /// Flush a batch once this many requests are queued.
  int max_batch = 8;
  /// ... or once the oldest queued request has waited this long.
  std::int64_t max_delay_us = 2000;
  /// Admission queue bound (requests). Beyond it, shed or reject.
  std::size_t queue_capacity = 64;
  /// Overflow policy: true sheds the oldest queued request (freshest data
  /// wins -- the in-vehicle alerting posture), false rejects the newcomer.
  bool shed_oldest = true;
  /// Queue depth at which batches switch to the degraded single-modality
  /// pass. Default: never.
  std::size_t degrade_high_watermark = static_cast<std::size_t>(-1);
  /// Queue depth at or below which degraded mode disengages (hysteresis;
  /// must be <= degrade_high_watermark).
  std::size_t degrade_low_watermark = 0;
  /// Batching worker threads. One is usually right: the fused pass is
  /// serialized on the model anyway and fans out across the process-wide
  /// ThreadPool; extra workers only overlap gather/scatter with inference.
  int workers = 1;
  /// Per-session smoothing + debounce parameters.
  engine::StreamingConfig streaming;
  /// Clock for deadline triage and latency accounting. Null (the default)
  /// reads std::chrono::steady_clock. With a custom source installed the
  /// max_delay_us flush timer degenerates to flush-on-arrival: a virtual
  /// clock only advances between events, so a real condition-variable
  /// timeout against it is meaningless (and could sleep arbitrarily long).
  std::shared_ptr<const TimeSource> time_source;
};

/// The micro-batching inference server. Thread-safe: submit() may be
/// called from any number of threads concurrently with the workers.
class Server {
 public:
  /// Result of one submit(): the synchronous admission verdict plus the
  /// future that resolves to the request's Response. The future is valid
  /// and guaranteed to resolve for every admission verdict.
  struct Submission {
    Admit admit{Admit::kRejected};
    std::future<Response> response;
  };

  /// Shares ownership of the ensemble (pass engine::borrow(e) or
  /// DarNet::ensemble_ptr). The ensemble must already be fitted if
  /// degraded mode is to use the IMU path.
  Server(std::shared_ptr<engine::EnsembleClassifier> ensemble,
         ShardConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] Submission submit(engine::ClassifyRequest request);

  /// Stop admitting, flush every queued request, join the workers. After
  /// drain() returns, no future is pending and every subsequent submit()
  /// returns Admit::kRejected (its future resolves to Status::kRejected).
  /// Idempotent.
  void drain();

  /// RCU-style hot swap: atomically replace the served ensemble with
  /// `next` (same architecture, presumably freshly-trained weights) and
  /// return the replica it replaced. In-flight batches finish on the
  /// replica they snapshotted at batch formation -- the flip drops no
  /// request and stalls no worker -- and per-session streaming state
  /// (EWMA + debounce) is untouched, so sessions whose weights did not
  /// change see bit-identical verdict streams across the swap.
  std::shared_ptr<engine::EnsembleClassifier> swap_ensemble(
      std::shared_ptr<engine::EnsembleClassifier> next);

  /// The ensemble currently being served (consistent snapshot).
  [[nodiscard]] std::shared_ptr<engine::EnsembleClassifier> ensemble() const;

  /// Aggregate counters (consistent snapshot).
  struct Stats {
    std::uint64_t submitted{0};
    std::uint64_t accepted{0};
    std::uint64_t shed{0};
    std::uint64_t rejected{0};
    std::uint64_t timeouts{0};
    std::uint64_t completed{0};
    std::uint64_t batches{0};
    std::uint64_t degraded_batches{0};
    std::uint64_t batched_rows{0};
    std::uint64_t ensemble_swaps{0};
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t queue_depth() const;
  /// True while the degraded-mode hysteresis is engaged (or forced).
  [[nodiscard]] bool degraded_mode() const;
  /// Operator override for degraded mode: force it on/off regardless of
  /// the watermark hysteresis, or std::nullopt to return control to the
  /// hysteresis. Used by resilience drills (the fleet simulator's
  /// degraded-mode flapping scenario) where queue depth alone would never
  /// deterministically cross the watermarks.
  void force_degraded(std::optional<bool> forced);
  /// Copy of a session's streaming state (default-constructed when the
  /// session has never been served).
  [[nodiscard]] engine::SessionState session(std::uint64_t session_id) const;
  [[nodiscard]] const ShardConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Pending {
    engine::ClassifyRequest request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void execute_batch(std::vector<Pending> batch, std::uint64_t ticket,
                     bool degraded,
                     const std::shared_ptr<engine::EnsembleClassifier>&
                         ensemble);
  // Resolves a request's promise. REQUIRES: mu_ free (promise
  // continuations must never run under the admission lock).
  void complete(Pending& pending, Response response);
  // The configured clock (config_.time_source, or steady_clock when null).
  [[nodiscard]] std::chrono::steady_clock::time_point clock_now()
      const noexcept;

  const ShardConfig config_;

  // Lock hierarchy (DESIGN.md "Concurrency model"): mu_ -> exec_mu_ ->
  // apply_mu_. No method currently nests two of them, but the order graph
  // enforces the documented direction the moment anyone does.

  // Admission + batch formation. deque is the FIFO; capacity is enforced
  // at every push (see the serve-bounded-queue lint rule).
  mutable sync::Mutex mu_{"serve/admission"};
  sync::CondVar work_cv_;
  std::deque<Pending> queue_ DARNET_GUARDED_BY(mu_);
  bool draining_ DARNET_GUARDED_BY(mu_){false};
  bool degraded_ DARNET_GUARDED_BY(mu_){false};
  // Operator override (force_degraded). The hysteresis keeps tracking
  // queue depth underneath so releasing the override is seamless.
  std::optional<bool> forced_degraded_ DARNET_GUARDED_BY(mu_);
  std::uint64_t next_ticket_ DARNET_GUARDED_BY(mu_){0};
  Stats stats_ DARNET_GUARDED_BY(mu_);
  // The served ensemble, RCU-style: workers snapshot the shared_ptr at
  // batch formation (under mu_) and run the whole batch on that replica;
  // swap_ensemble() flips the pointer under the same lock. An in-flight
  // batch keeps its replica alive through its own reference, so a swap
  // never stalls on or disturbs running inference.
  std::shared_ptr<engine::EnsembleClassifier> ensemble_
      DARNET_GUARDED_BY(mu_);

  // Serialises fused passes: the underlying models keep forward caches,
  // so at most one batch may be inside the ensemble at a time.
  sync::Mutex exec_mu_{"serve/exec"};

  // Session scatter, applied strictly in ticket order so per-session
  // state advances in admission order with any worker count.
  mutable sync::Mutex apply_mu_{"serve/apply"};
  sync::CondVar apply_cv_;
  std::uint64_t next_apply_ DARNET_GUARDED_BY(apply_mu_){0};
  std::unordered_map<std::uint64_t, engine::SessionState> sessions_
      DARNET_GUARDED_BY(apply_mu_);

  // Swapped out under mu_ by the first drain() and joined lock-free, so
  // concurrent drains are safe and no lock is held across a join.
  std::vector<parallel::ServiceThread> workers_ DARNET_GUARDED_BY(mu_);
};

}  // namespace darnet::serve
