// darnet::serve::Router -- the multi-tenant sharded front of the serving
// tier (the "millions of users" scale-out story, ROADMAP item 3).
//
// A Router owns N serve::Server shards and routes every ClassifyRequest
// by consistent-hashing its session id onto a ring of virtual nodes, so
// (a) one session always lands on the same shard -- its EWMA + debounce
// streaming state lives there -- and (b) the key space spreads evenly
// for any shard count. Layered *in front of* each shard's accept/shed/
// reject backpressure sit per-tenant admission quotas: deterministic
// token buckets keyed on ClassifyRequest::tenant_id and refilled from
// the serving clock (the injected TimeSource under simulation), so a
// noisy tenant is clipped at the door before it can displace anyone
// else's queued work.
//
// Model rollout is a versioned Snapshot: one EnsembleClassifier replica
// per shard (replicas are NOT shared across shards -- the underlying
// models keep forward caches, and each shard serialises batches on its
// own exec lock). swap_snapshot() hot-swaps all shards RCU-style: each
// shard's served-ensemble shared_ptr is flipped under its admission
// lock while workers run batches on the replica they snapshotted at
// batch formation. No request is dropped, no worker stalls, and
// sessions untouched by the weight change see bit-identical verdict
// streams across the swap.
//
// Lock hierarchy: the router's "route/state" mutex ranks *before* the
// per-shard "serve/*" family (DESIGN.md "Lock hierarchy") -- it is held
// across the per-shard pointer flips in swap_snapshot(), which records
// the route/state -> serve/admission edge in the sync:: order graph.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "serve/serve.hpp"

namespace darnet::serve {

/// Deterministic 64-bit mix (the splitmix64 finalizer). Used for ring
/// points and request routing instead of std::hash, whose value is
/// implementation-defined -- routing must be identical on every build
/// for the simulator's bit-reproducibility contract.
[[nodiscard]] constexpr std::uint64_t route_hash(std::uint64_t key) noexcept {
  key += 0x9e3779b97f4a7c15ULL;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
  return key ^ (key >> 31);
}

/// Per-tenant admission budget: a token bucket holding at most
/// `capacity` tokens, refilled continuously at `refill_per_s`. Every
/// admitted request spends one token; an empty bucket rejects.
struct TenantQuota {
  double capacity = 0.0;
  double refill_per_s = 0.0;
};

/// Router-level policy. The per-shard half of the old monolithic server
/// config lives in ShardConfig; this is everything that only makes sense
/// above a single shard.
struct RouterConfig {
  /// Number of serve::Server shards (and snapshot replicas).
  int shards = 1;
  /// Ring points per shard. More points smooth the key-space split at
  /// the cost of a larger (still binary-searched) ring.
  int virtual_nodes = 64;
  /// Replicated per-shard serving parameters (including the TimeSource
  /// the quota buckets also refill from).
  ShardConfig shard;
  /// Tenant id -> admission budget. Tenants absent from the map are
  /// unmetered (admission falls through to shard backpressure alone).
  std::map<std::uint64_t, TenantQuota> quotas;
};

/// Consistent-hash session->shard router with per-tenant quotas and
/// versioned hot-swappable ensemble snapshots. Thread-safe: submit()
/// may race with itself, swap_snapshot() and drain().
class Router {
 public:
  /// A versioned weight rollout: one ensemble replica per shard, all
  /// built from the same weights so any shard serves identical math.
  struct Snapshot {
    std::uint64_t version{0};
    std::vector<std::shared_ptr<engine::EnsembleClassifier>> replicas;
  };

  /// `snapshot.replicas.size()` must equal `config.shards`; every
  /// replica must be non-null and distinct (shards must not share one).
  Router(Snapshot snapshot, RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Route one request: charge the tenant's quota bucket (if metered),
  /// then forward to the session's shard. A quota rejection returns
  /// Admit::kRejected with the future already resolved to
  /// Status::kRejected -- the same always-resolved contract as
  /// Server::submit.
  [[nodiscard]] Server::Submission submit(engine::ClassifyRequest request);

  /// The shard a session routes to (pure function of the ring).
  [[nodiscard]] int shard_for(std::uint64_t session_id) const noexcept;

  /// Hot-swap to `next` (see file comment). next.version must be
  /// strictly greater than the current version and next.replicas must
  /// match the shard count; throws std::invalid_argument otherwise.
  void swap_snapshot(Snapshot next);

  /// Version of the snapshot currently being served.
  [[nodiscard]] std::uint64_t snapshot_version() const;

  /// Drain every shard (stop admission, flush, join). Idempotent; the
  /// destructor calls it. After drain() returns, submit() rejects.
  void drain();

  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// Direct access to one shard (stats, force_degraded, session peeks).
  [[nodiscard]] Server& shard(int index);

  /// Aggregate router counters plus a per-shard stats snapshot.
  struct Stats {
    std::uint64_t routed{0};
    std::uint64_t quota_rejected{0};
    std::uint64_t snapshot_swaps{0};
    std::vector<Server::Stats> per_shard;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const RouterConfig& config() const noexcept {
    return config_;
  }

  /// The router's notion of now: the injected shard TimeSource when one is
  /// configured, std::chrono::steady_clock otherwise. Public so layers in
  /// front (the HTTP edge's deadline stamping) share the same clock instead
  /// of reading the wall clock directly (rule time-source-purity).
  [[nodiscard]] std::chrono::steady_clock::time_point clock_now()
      const noexcept;

 private:
  struct Bucket {
    double tokens{0.0};
    std::chrono::steady_clock::time_point refilled;
  };

  // True when the tenant may pass (spends one token). REQUIRES: mu_ held.
  [[nodiscard]] bool charge_tenant(std::uint64_t tenant_id);

  const RouterConfig config_;
  // Both fixed at construction: the shard set and the sorted ring of
  // (route_hash point, shard) virtual nodes. Lock-free reads.
  const std::vector<std::unique_ptr<Server>> shards_;
  const std::vector<std::pair<std::uint64_t, int>> ring_;

  // Router policy state. Ranks before the per-shard serve/* family:
  // swap_snapshot() holds it across the shards' pointer flips.
  mutable sync::Mutex mu_{"route/state"};
  std::map<std::uint64_t, Bucket> buckets_ DARNET_GUARDED_BY(mu_);
  std::uint64_t version_ DARNET_GUARDED_BY(mu_){0};
  std::uint64_t routed_ DARNET_GUARDED_BY(mu_){0};
  std::uint64_t quota_rejected_ DARNET_GUARDED_BY(mu_){0};
  std::uint64_t swaps_ DARNET_GUARDED_BY(mu_){0};
};

}  // namespace darnet::serve
