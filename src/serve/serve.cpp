#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>
#include <utility>

#include "check/check.hpp"
#include "obs/obs.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"

namespace darnet::serve {

using tensor::Tensor;

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t us_between(Clock::time_point from,
                                      Clock::time_point to) noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

const char* admit_name(Admit admit) noexcept {
  switch (admit) {
    case Admit::kAccepted:
      return "accepted";
    case Admit::kShedOldest:
      return "shed_oldest";
    case Admit::kRejected:
      return "rejected";
  }
  return "unknown";
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kTimeout:
      return "timeout";
    case Status::kShed:
      return "shed";
    case Status::kRejected:
      return "rejected";
  }
  return "unknown";
}

Server::Server(std::shared_ptr<engine::EnsembleClassifier> ensemble,
               ShardConfig config)
    : config_(config), ensemble_(std::move(ensemble)) {
  if (!ensemble_) {
    throw std::invalid_argument("serve::Server: ensemble must not be null");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("serve::Server: max_batch must be >= 1");
  }
  if (config_.max_delay_us < 0) {
    throw std::invalid_argument("serve::Server: max_delay_us must be >= 0");
  }
  if (config_.queue_capacity < 1) {
    throw std::invalid_argument("serve::Server: queue_capacity must be >= 1");
  }
  if (config_.workers < 1) {
    throw std::invalid_argument("serve::Server: workers must be >= 1");
  }
  if (config_.degrade_low_watermark > config_.degrade_high_watermark) {
    throw std::invalid_argument(
        "serve::Server: degrade_low_watermark must be <= "
        "degrade_high_watermark");
  }
  engine::validate(config_.streaming, "serve::Server");

  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { drain(); }

std::chrono::steady_clock::time_point Server::clock_now() const noexcept {
  return config_.time_source ? config_.time_source->now() : Clock::now();
}

Server::Submission Server::submit(engine::ClassifyRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = clock_now();

  Submission out;
  out.response = pending.promise.get_future();

  // Completed outside the admission lock: promise continuations must never
  // run while mu_ is held.
  std::optional<Pending> shed;
  {
    sync::Lock lock(mu_);
    ++stats_.submitted;
    DARNET_COUNTER_ADD("serve/requests_submitted_total", 1);
    if (draining_) {
      out.admit = Admit::kRejected;
    } else if (queue_.size() >= config_.queue_capacity) {
      if (config_.shed_oldest) {
        shed.emplace(std::move(queue_.front()));
        queue_.pop_front();
        ++stats_.shed;
        DARNET_COUNTER_ADD("serve/requests_shed_total", 1);
        out.admit = Admit::kShedOldest;
      } else {
        out.admit = Admit::kRejected;
      }
    } else {
      out.admit = Admit::kAccepted;
    }
    if (out.admit == Admit::kRejected) {
      ++stats_.rejected;
      DARNET_COUNTER_ADD("serve/requests_rejected_total", 1);
    } else {
      ++stats_.accepted;
      DARNET_CHECK_MSG(queue_.size() < config_.queue_capacity,
                       "serve::Server::submit: push would exceed "
                       "queue_capacity (bounded-queue invariant)");
      queue_.push_back(std::move(pending));
      DARNET_GAUGE_SET("serve/queue_depth",
                       static_cast<std::int64_t>(queue_.size()));
    }
  }

  if (out.admit != Admit::kRejected) {
    work_cv_.notify_one();
  }
  if (shed) {
    Response response;
    response.status = Status::kShed;
    complete(*shed, std::move(response));
  }
  if (out.admit == Admit::kRejected) {
    Response response;
    response.status = Status::kRejected;
    complete(pending, std::move(response));
  }
  return out;
}

void Server::worker_loop() {
  // Per-worker scratch arena: all tensor traffic on this thread (batch
  // stacking, model activations, fused outputs) cycles through it, so
  // steady-state batches stop hitting the heap. Result rows that escape to
  // client threads via promises degrade to plain heap frees -- safe, the
  // blocks are malloc-compatible (see tensor/arena.hpp).
  tensor::Arena arena;
  tensor::ArenaScope scope(arena);
  for (;;) {
    std::vector<Pending> batch;
    std::uint64_t ticket = 0;
    bool degraded = false;
    bool more = false;
    std::shared_ptr<engine::EnsembleClassifier> ensemble;
    {
      sync::UniqueLock lock(mu_);
      // Batch-formation policy: flush once `max_batch` requests are queued
      // or the oldest has waited `max_delay_us`, whichever comes first;
      // drain flushes immediately.
      for (;;) {
        if (queue_.empty()) {
          if (draining_) return;
          work_cv_.wait(lock,
                        [&] { return draining_ || !queue_.empty(); });
          continue;
        }
        if (draining_ ||
            queue_.size() >= static_cast<std::size_t>(config_.max_batch)) {
          break;
        }
        if (config_.time_source) {
          // A custom (virtual) clock cannot arm a real CV timeout -- it
          // only advances between events -- so the delay flush degenerates
          // to flush-on-arrival: take whatever is queued now.
          break;
        }
        const auto flush_at =
            queue_.front().enqueued +
            std::chrono::microseconds(config_.max_delay_us);
        if (work_cv_.wait_until(lock, flush_at, [&] {
              return draining_ || queue_.empty() ||
                     queue_.size() >=
                         static_cast<std::size_t>(config_.max_batch);
            })) {
          continue;  // state changed (drain / batch full / queue stolen)
        }
        break;  // the oldest request has now waited max_delay_us
      }

      // Degraded-mode hysteresis on the pre-pop depth: engage at the high
      // watermark, disengage only once depth falls to the low watermark.
      const std::size_t depth = queue_.size();
      if (depth >= config_.degrade_high_watermark) {
        degraded_ = true;
      } else if (degraded_ && depth <= config_.degrade_low_watermark) {
        degraded_ = false;
      }
      degraded = forced_degraded_.value_or(degraded_);
      DARNET_GAUGE_SET("serve/degraded_mode", degraded ? 1 : 0);

      const std::size_t take =
          std::min(depth, static_cast<std::size_t>(config_.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ticket = next_ticket_++;
      more = !queue_.empty();
      // RCU read side: snapshot the served replica under mu_; the whole
      // batch (gather, fused pass, scatter) runs on this snapshot even if
      // swap_ensemble() flips the pointer mid-flight.
      ensemble = ensemble_;
      DARNET_GAUGE_SET("serve/queue_depth",
                       static_cast<std::int64_t>(queue_.size()));
    }
    if (more) work_cv_.notify_one();

    execute_batch(std::move(batch), ticket,
                  degraded && ensemble->can_degrade(), ensemble);
  }
}

void Server::execute_batch(
    std::vector<Pending> batch, std::uint64_t ticket, bool degraded,
    const std::shared_ptr<engine::EnsembleClassifier>& ensemble) {
  DARNET_SPAN("serve/execute_batch");

  // Deadline triage: requests already past their deadline get a timeout
  // verdict without inference; the rest keep their admission order.
  const auto now = clock_now();
  std::vector<Pending> live;
  std::vector<Pending> expired;
  live.reserve(batch.size());
  for (auto& pending : batch) {
    if (pending.request.deadline < now) {
      expired.push_back(std::move(pending));
    } else {
      live.push_back(std::move(pending));
    }
  }
  for (auto& pending : expired) {
    Response response;
    response.status = Status::kTimeout;
    response.result.latency_us = us_between(pending.enqueued, now);
    DARNET_COUNTER_ADD("serve/requests_timeout_total", 1);
    complete(pending, std::move(response));
  }

  // Gather + fused pass. exec_mu_ serialises entry into the ensemble: the
  // underlying models keep forward caches, so at most one batch at a time.
  Tensor fused;
  std::exception_ptr error;
  if (!live.empty()) {
    try {
      std::vector<Tensor> frames;
      std::vector<Tensor> imu;
      frames.reserve(live.size());
      const bool want_imu = ensemble->has_imu_model();
      if (want_imu) imu.reserve(live.size());
      for (auto& pending : live) {
        frames.push_back(std::move(pending.request.frame));
        if (want_imu) imu.push_back(std::move(pending.request.imu_window));
      }
      const Tensor frame_batch = tensor::stack_rows(frames);
      const Tensor imu_batch = want_imu ? tensor::stack_rows(imu) : Tensor{};
      sync::Lock exec(exec_mu_);
      DARNET_TIMER("serve/batch_execute_ns");
      fused = degraded
                  ? ensemble->classify_batch_degraded(frame_batch, imu_batch)
                  : ensemble->classify_batch(frame_batch, imu_batch);
    } catch (...) {
      error = std::current_exception();
    }
  }

  // Ticket-ordered scatter: session state advances strictly in batch
  // admission order, which is what makes served verdict sequences
  // bit-identical to the single-threaded reference for any worker count.
  // This block runs for every ticket (even all-expired or failed batches)
  // so the ordering chain never stalls.
  {
    sync::UniqueLock lock(apply_mu_);
    apply_cv_.wait(lock, [&] { return next_apply_ == ticket; });
    if (!live.empty() && !error) {
      DARNET_SPAN("serve/scatter_rows");
      for (std::size_t i = 0; i < live.size(); ++i) {
        Pending& pending = live[i];
        try {
          const Tensor row = tensor::take_row(fused, static_cast<int>(i));
          engine::SessionState& state =
              sessions_[pending.request.session_id];
          Response response;
          response.status = Status::kOk;
          response.result.degraded = degraded;
          response.result.verdict =
              engine::advance(state, row, config_.streaming);
          const auto done_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  clock_now() - pending.enqueued)
                  .count();
          response.result.latency_us = done_ns / 1000;
          DARNET_HISTOGRAM_NS("serve/request_latency_ns", done_ns);
          complete(pending, std::move(response));
        } catch (...) {
          pending.promise.set_exception(std::current_exception());
        }
      }
    }
    ++next_apply_;
    apply_cv_.notify_all();
  }
  if (error) {
    for (auto& pending : live) {
      pending.promise.set_exception(error);
    }
  }

  {
    sync::Lock lock(mu_);
    stats_.timeouts += expired.size();
    if (!live.empty()) {
      ++stats_.batches;
      if (degraded) ++stats_.degraded_batches;
      stats_.batched_rows += live.size();
      if (!error) stats_.completed += live.size();
    }
  }
  if (!live.empty()) {
    DARNET_COUNTER_ADD("serve/batches_executed_total", 1);
    DARNET_COUNTER_ADD("serve/batch_rows_total",
                       static_cast<std::int64_t>(live.size()));
    if (degraded) DARNET_COUNTER_ADD("serve/batches_degraded_total", 1);
    if (!error) {
      DARNET_COUNTER_ADD("serve/requests_completed_total",
                         static_cast<std::int64_t>(live.size()));
    }
  }
}

// REQUIRES: mu_ free. Futures may have continuations attached; resolving
// one while holding the admission lock could re-enter submit() and
// self-deadlock.
void Server::complete(Pending& pending, Response response) {
  DARNET_ASSERT_NOT_HELD(mu_);
  pending.promise.set_value(std::move(response));
}

void Server::drain() {
  // Claim the workers under mu_, then join with no lock held: joins (and
  // the notify that precedes them) must never run under the admission
  // lock, and the swap makes concurrent drain() calls race-free -- only
  // one caller gets the threads, later callers see an empty vector.
  std::vector<parallel::ServiceThread> workers;
  {
    sync::Lock lock(mu_);
    draining_ = true;
    workers.swap(workers_);
  }
  DARNET_ASSERT_NOT_HELD(mu_);
  work_cv_.notify_all();
  for (auto& worker : workers) {
    worker.join();  // workers flush the queue before exiting
  }
  DARNET_CHECK_MSG(queue_depth() == 0,
                   "serve::Server::drain: queue not empty after join");
}

Server::Stats Server::stats() const {
  sync::Lock lock(mu_);
  return stats_;
}

std::size_t Server::queue_depth() const {
  sync::Lock lock(mu_);
  return queue_.size();
}

bool Server::degraded_mode() const {
  sync::Lock lock(mu_);
  return forced_degraded_.value_or(degraded_);
}

void Server::force_degraded(std::optional<bool> forced) {
  {
    sync::Lock lock(mu_);
    forced_degraded_ = forced;
  }
  // Wake any worker parked on batch formation so the new mode applies to
  // the next batch it cuts.
  work_cv_.notify_all();
}

std::shared_ptr<engine::EnsembleClassifier> Server::swap_ensemble(
    std::shared_ptr<engine::EnsembleClassifier> next) {
  if (!next) {
    throw std::invalid_argument(
        "serve::Server::swap_ensemble: ensemble must not be null");
  }
  std::shared_ptr<engine::EnsembleClassifier> previous;
  {
    sync::Lock lock(mu_);
    previous = std::move(ensemble_);
    ensemble_ = std::move(next);
    ++stats_.ensemble_swaps;
  }
  DARNET_COUNTER_ADD("serve/ensemble_swaps_total", 1);
  return previous;
}

std::shared_ptr<engine::EnsembleClassifier> Server::ensemble() const {
  sync::Lock lock(mu_);
  return ensemble_;
}

engine::SessionState Server::session(std::uint64_t session_id) const {
  sync::Lock lock(apply_mu_);
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? engine::SessionState{} : it->second;
}

}  // namespace darnet::serve
