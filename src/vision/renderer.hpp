// Synthetic driver-scene renderer.
//
// Data-gate substitution (DESIGN.md): the paper's two datasets are private
// (5-driver, 6-class dashcam footage; and a 10-driver, 18-class GoPro set),
// so frames are synthesised from a parametric cabin model -- steering
// wheel, torso, head, two arms, and class-specific props (phone, cup) --
// with randomized pose, lighting and sensor noise. The class structure is
// tuned to reproduce the paper's confusability pattern: texting / talking /
// normal driving are visually ambiguous (the phone is small and often
// occluded, and "normal" includes a resting hand off the wheel), while
// eating, hair/makeup and reaching are visually distinctive.
#pragma once

#include "util/rng.hpp"
#include "vision/image.hpp"

namespace darnet::vision {

/// The six behaviour classes of Table 1, in paper order (0-based).
enum class DriverClass {
  kNormal = 0,
  kTalking = 1,
  kTexting = 2,
  kEating = 3,
  kHairMakeup = 4,
  kReaching = 5,
};
inline constexpr int kDriverClassCount = 6;

[[nodiscard]] const char* driver_class_name(DriverClass c) noexcept;

/// Number of classes in the second (privacy-evaluation) dataset of §5.3.
inline constexpr int kFineClassCount = 18;

struct RenderConfig {
  int size = 48;                  // rendered frame edge (stands in for 300)
  double pose_noise = 1.7;        // scales head/arm jitter
  double lighting_min = 0.55;     // "varying degrees of lighting" (§5.1)
  double lighting_max = 1.25;
  double pixel_noise = 0.13;      // additive sensor noise stddev
  double prop_visibility = 0.12;  // chance the phone/cup is actually visible
  double ambiguous_pose_rate = 0.75;  // normal frames with a hand off-wheel

  // Per-driver style (core::DriverStyle writes these): systematic seating
  // offset, body size, and lighting preference of one driver.
  double head_dx = 0.0;
  double head_dy = 0.0;
  double body_scale = 1.0;
  double lighting_bias = 0.0;
};

/// Render one frame of the 6-class dataset.
[[nodiscard]] Image render_driver_scene(DriverClass cls,
                                        const RenderConfig& config,
                                        util::Rng& rng);

/// Render one frame of the 18-class fine-grained dataset (§5.3): the same
/// cabin with the free hand at one of 18 pose stations (9 angular
/// positions around the torso x 2 arm extensions). Fine spatial detail is
/// exactly what aggressive down-sampling destroys, which drives the
/// dCNN-H accuracy collapse in Table 3.
[[nodiscard]] Image render_fine_scene(int fine_class,
                                      const RenderConfig& config,
                                      util::Rng& rng);

}  // namespace darnet::vision
