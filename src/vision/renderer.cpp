#include "vision/renderer.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace darnet::vision {

namespace {

// All geometry is expressed in unit coordinates (0..1 across the frame) and
// scaled by the configured size at draw time.

struct P {
  double x, y;
};

void draw_disc(Image& img, P center, double radius, float value,
               float alpha = 1.0f) {
  const int s = img.width();
  const double cx = center.x * s, cy = center.y * s, r = radius * s;
  const int x0 = static_cast<int>(cx - r - 1), x1 = static_cast<int>(cx + r + 1);
  const int y0 = static_cast<int>(cy - r - 1), y1 = static_cast<int>(cy + r + 1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double dx = x + 0.5 - cx, dy = y + 0.5 - cy;
      const double d = std::sqrt(dx * dx + dy * dy);
      if (d <= r) {
        // Soft one-pixel edge for mild anti-aliasing.
        const float a = static_cast<float>(std::min(1.0, r - d + 0.5)) * alpha;
        if (a > 0.0f) img.blend(x, y, value, a);
      }
    }
  }
}

void draw_ellipse(Image& img, P center, double rx, double ry, float value,
                  float alpha = 1.0f) {
  const int s = img.width();
  const double cx = center.x * s, cy = center.y * s;
  const double ax = rx * s, ay = ry * s;
  const int x0 = static_cast<int>(cx - ax - 1), x1 = static_cast<int>(cx + ax + 1);
  const int y0 = static_cast<int>(cy - ay - 1), y1 = static_cast<int>(cy + ay + 1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double dx = (x + 0.5 - cx) / ax, dy = (y + 0.5 - cy) / ay;
      if (dx * dx + dy * dy <= 1.0) img.blend(x, y, value, alpha);
    }
  }
}

void draw_ring(Image& img, P center, double radius, double thickness,
               float value) {
  const int s = img.width();
  const double cx = center.x * s, cy = center.y * s, r = radius * s;
  const double half = thickness * s / 2.0;
  const int x0 = static_cast<int>(cx - r - half - 1);
  const int x1 = static_cast<int>(cx + r + half + 1);
  const int y0 = static_cast<int>(cy - r - half - 1);
  const int y1 = static_cast<int>(cy + r + half + 1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double dx = x + 0.5 - cx, dy = y + 0.5 - cy;
      const double d = std::abs(std::sqrt(dx * dx + dy * dy) - r);
      if (d <= half) img.blend(x, y, value);
    }
  }
}

/// Thick line segment (capsule) from a to b.
void draw_limb(Image& img, P a, P b, double thickness, float value) {
  const int s = img.width();
  const double ax = a.x * s, ay = a.y * s, bx = b.x * s, by = b.y * s;
  const double half = thickness * s / 2.0;
  const double vx = bx - ax, vy = by - ay;
  const double len2 = vx * vx + vy * vy;
  const int x0 = static_cast<int>(std::min(ax, bx) - half - 1);
  const int x1 = static_cast<int>(std::max(ax, bx) + half + 1);
  const int y0 = static_cast<int>(std::min(ay, by) - half - 1);
  const int y1 = static_cast<int>(std::max(ay, by) + half + 1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double px = x + 0.5 - ax, py = y + 0.5 - ay;
      const double t =
          len2 > 1e-12 ? std::clamp((px * vx + py * vy) / len2, 0.0, 1.0)
                       : 0.0;
      const double dx = px - t * vx, dy = py - t * vy;
      if (dx * dx + dy * dy <= half * half) img.blend(x, y, value);
    }
  }
}

void draw_rect(Image& img, P center, double w, double h, double angle,
               float value) {
  const int s = img.width();
  const double cx = center.x * s, cy = center.y * s;
  const double hw = w * s / 2.0, hh = h * s / 2.0;
  const double ca = std::cos(angle), sa = std::sin(angle);
  const double reach = std::sqrt(hw * hw + hh * hh) + 1.0;
  const int x0 = static_cast<int>(cx - reach), x1 = static_cast<int>(cx + reach);
  const int y0 = static_cast<int>(cy - reach), y1 = static_cast<int>(cy + reach);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double dx = x + 0.5 - cx, dy = y + 0.5 - cy;
      const double u = dx * ca + dy * sa;
      const double v = -dx * sa + dy * ca;
      if (std::abs(u) <= hw && std::abs(v) <= hh) img.blend(x, y, value);
    }
  }
}

struct Cabin {
  float light;     // global lighting multiplier
  P head;          // head centre
  double head_r;
  P shoulder_l, shoulder_r;
  P wheel;
  double wheel_r;
};

/// Draw the parts every class shares and return the key anchor points.
Cabin draw_cabin(Image& img, const RenderConfig& cfg, util::Rng& rng) {
  Cabin c;
  c.light = static_cast<float>(
      rng.uniform(cfg.lighting_min, cfg.lighting_max) + cfg.lighting_bias);

  // Background: vertical gradient (window at top, dark dash at bottom).
  const int s = img.width();
  for (int y = 0; y < s; ++y) {
    const float base =
        0.45f - 0.25f * static_cast<float>(y) / static_cast<float>(s);
    for (int x = 0; x < s; ++x) img.at(x, y) = base * c.light;
  }
  // Door/window edge on the left.
  draw_rect(img, {0.06, 0.5}, 0.12, 1.0, 0.0, 0.55f * c.light);

  const double pj = 0.018 * cfg.pose_noise;
  c.head = {0.56 + cfg.head_dx + rng.gaussian(0, pj),
            0.28 + cfg.head_dy + rng.gaussian(0, pj)};
  c.head_r = (0.105 + rng.gaussian(0, 0.006 * cfg.pose_noise)) *
             cfg.body_scale;
  c.shoulder_l = {c.head.x - 0.14 + rng.gaussian(0, pj),
                  0.47 + rng.gaussian(0, pj)};
  c.shoulder_r = {c.head.x + 0.14 + rng.gaussian(0, pj),
                  0.47 + rng.gaussian(0, pj)};
  c.wheel = {0.26 + rng.gaussian(0, pj), 0.72 + rng.gaussian(0, pj)};
  c.wheel_r = 0.17 + rng.gaussian(0, 0.008 * cfg.pose_noise);

  // Torso then head on top.
  draw_ellipse(img, {c.head.x, 0.68}, 0.20, 0.26, 0.30f * c.light);
  draw_disc(img, c.head, c.head_r, 0.78f * c.light);
  draw_ring(img, c.wheel, c.wheel_r, 0.035, 0.62f * c.light);
  return c;
}

/// Point on the wheel rim at a given angle (radians; 0 = +x axis).
P wheel_point(const Cabin& c, double angle) {
  return {c.wheel.x + c.wheel_r * std::cos(angle),
          c.wheel.y + c.wheel_r * std::sin(angle)};
}

void draw_arm(Image& img, P shoulder, P hand, float value) {
  // Single-segment limb with a hand blob; the elbow is implied by a slight
  // midpoint offset so arms read as bent.
  P mid{(shoulder.x + hand.x) / 2 + 0.02, (shoulder.y + hand.y) / 2 + 0.02};
  draw_limb(img, shoulder, mid, 0.055, value);
  draw_limb(img, mid, hand, 0.050, value);
  draw_disc(img, hand, 0.032, value * 1.08f);
}

void draw_phone(Image& img, P at, double angle, const RenderConfig& cfg,
                float light, util::Rng& rng) {
  if (!rng.chance(cfg.prop_visibility)) return;  // occluded by the hand
  draw_rect(img, at, 0.045, 0.075, angle, 0.95f * light);
}

void draw_cup(Image& img, P at, float light) {
  draw_rect(img, at, 0.055, 0.09, 0.1, 0.88f * light);
}

}  // namespace

const char* driver_class_name(DriverClass c) noexcept {
  switch (c) {
    case DriverClass::kNormal:
      return "Normal Driving";
    case DriverClass::kTalking:
      return "Talking";
    case DriverClass::kTexting:
      return "Texting";
    case DriverClass::kEating:
      return "Eating/Drinking";
    case DriverClass::kHairMakeup:
      return "Hair and Makeup";
    case DriverClass::kReaching:
      return "Reaching";
  }
  return "?";
}

Image render_driver_scene(DriverClass cls, const RenderConfig& config,
                          util::Rng& rng) {
  if (config.size < 16) {
    throw std::invalid_argument("render_driver_scene: size too small");
  }
  Image img(config.size, config.size);
  const Cabin cab = draw_cabin(img, config, rng);
  const float arm = 0.70f * cab.light;
  const double pj = 0.02 * config.pose_noise;
  const bool right_handed = rng.chance(0.5);

  // The "anchored" hand: on the wheel for every class.
  const P wheel_hand = wheel_point(cab, rng.uniform(-2.4, -0.7));

  switch (cls) {
    case DriverClass::kNormal: {
      draw_arm(img, cab.shoulder_l, wheel_point(cab, -2.5 + rng.gaussian(0, 0.2)),
               arm);
      // Real "normal driving" is postured diversely; two of the variants
      // deliberately overlap other classes' poses, which is what drives
      // the paper's CNN confusion between normal / texting / talking.
      const double variant = rng.uniform();
      if (variant < config.ambiguous_pose_rate / 2) {
        // Resting hand low near the lap (texting-like, but no phone).
        P rest{0.51 + rng.gaussian(0, pj * 2), 0.79 + rng.gaussian(0, pj * 2)};
        draw_arm(img, cab.shoulder_r, rest, arm);
      } else if (variant < config.ambiguous_pose_rate) {
        // Hand near the face -- scratching a cheek, adjusting glasses
        // (talking-like, but no phone).
        const double side = rng.chance(0.5) ? 1.0 : -1.0;
        P cheek{cab.head.x + side * (cab.head_r + 0.02) + rng.gaussian(0, pj),
                cab.head.y + 0.02 + rng.gaussian(0, pj)};
        draw_arm(img, cab.shoulder_r, cheek, arm);
      } else {
        draw_arm(img, cab.shoulder_r, wheel_point(cab, -0.6 + rng.gaussian(0, 0.2)),
                 arm);
      }
      break;
    }
    case DriverClass::kTalking: {
      const double side = right_handed ? 1.0 : -1.0;
      P ear{cab.head.x + side * (cab.head_r + 0.015) + rng.gaussian(0, pj),
            cab.head.y + rng.gaussian(0, pj)};
      const P shoulder = right_handed ? cab.shoulder_r : cab.shoulder_l;
      const P other_sh = right_handed ? cab.shoulder_l : cab.shoulder_r;
      draw_arm(img, other_sh, wheel_hand, arm);
      draw_arm(img, shoulder, ear, arm);
      draw_phone(img, ear, 0.25, config, cab.light, rng);
      break;
    }
    case DriverClass::kTexting: {
      // Section 5.1: "the driver holding the phone between waist and eye
      // level in either the left or right hand" -- a diffuse pose band
      // that overlaps normal driving's resting/face variants, which is
      // why the paper's CNN only reaches 36% texting recall.
      P hold{0.50 + rng.gaussian(0, pj * 2.0),
             rng.uniform(0.38, 0.80)};
      const P shoulder = right_handed ? cab.shoulder_r : cab.shoulder_l;
      const P other_sh = right_handed ? cab.shoulder_l : cab.shoulder_r;
      draw_arm(img, other_sh, wheel_hand, arm);
      draw_arm(img, shoulder, hold, arm);
      draw_phone(img, {hold.x, hold.y + 0.015}, 1.35, config, cab.light, rng);
      break;
    }
    case DriverClass::kEating: {
      P mouth{cab.head.x + rng.gaussian(0, pj),
              cab.head.y + cab.head_r + 0.07 + rng.gaussian(0, pj)};
      const P shoulder = right_handed ? cab.shoulder_r : cab.shoulder_l;
      const P other_sh = right_handed ? cab.shoulder_l : cab.shoulder_r;
      draw_arm(img, other_sh, wheel_hand, arm);
      draw_arm(img, shoulder, mouth, arm);
      if (rng.chance(std::min(1.0, config.prop_visibility + 0.5))) {
        draw_cup(img, {mouth.x, mouth.y + 0.02}, cab.light);
      }
      break;
    }
    case DriverClass::kHairMakeup: {
      P crown{cab.head.x + rng.gaussian(0, pj * 1.5),
              cab.head.y - cab.head_r - 0.06 + rng.gaussian(0, pj)};
      const P shoulder = right_handed ? cab.shoulder_r : cab.shoulder_l;
      const P other_sh = right_handed ? cab.shoulder_l : cab.shoulder_r;
      draw_arm(img, other_sh, wheel_hand, arm);
      draw_arm(img, shoulder, crown, arm);
      break;
    }
    case DriverClass::kReaching: {
      // Arm extended far right (toward the passenger seat / back seat),
      // torso leaning with it.
      P target{0.92 + rng.gaussian(0, pj), 0.52 + rng.gaussian(0, pj * 3)};
      draw_arm(img, cab.shoulder_l, wheel_hand, arm);
      draw_arm(img, cab.shoulder_r, target, arm);
      draw_ellipse(img, {cab.head.x + 0.05, 0.66}, 0.20, 0.25,
                   0.32f * cab.light, 0.5f);
      break;
    }
  }

  // Sensor noise.
  if (config.pixel_noise > 0.0) {
    for (float& p : img.pixels()) {
      p += static_cast<float>(rng.gaussian(0.0, config.pixel_noise));
    }
  }
  img.clamp();
  return img;
}

Image render_fine_scene(int fine_class, const RenderConfig& config,
                        util::Rng& rng) {
  if (fine_class < 0 || fine_class >= kFineClassCount) {
    throw std::invalid_argument("render_fine_scene: class out of range");
  }
  Image img(config.size, config.size);
  const Cabin cab = draw_cabin(img, config, rng);
  const float arm = 0.70f * cab.light;

  // 18 pose stations: 9 angular hand positions around the torso centre x
  // {short, long} arm extension. Adjacent stations differ by ~35 degrees
  // of arm angle and the two extensions by ~8 px at full resolution, so
  // classification requires spatial detail that degrades gradually under
  // nearest-neighbour down-sampling: mostly intact at 3x (dCNN-L),
  // partially lost at 6x (dCNN-M), destroyed at 12x (dCNN-H).
  const int station = fine_class / 2;
  const bool extended = (fine_class % 2) == 1;
  const double angle =
      -2.7 + 0.6 * station + rng.gaussian(0, 0.05 * config.pose_noise);
  const P torso{cab.head.x, 0.60};
  const double reach = (extended ? 0.42 : 0.22) +
                       rng.gaussian(0, 0.012 * config.pose_noise);
  P hand{torso.x + reach * std::cos(angle), torso.y + reach * std::sin(angle)};
  hand.x = std::clamp(hand.x, 0.05, 0.95);
  hand.y = std::clamp(hand.y, 0.05, 0.95);

  draw_arm(img, cab.shoulder_l,
           wheel_point(cab, -2.4 + rng.gaussian(0, 0.2)), arm);
  // The free arm is drawn thicker than the 6-class scenes', with a large
  // hand blob: the GoPro dataset's poses must remain legible at the Low
  // distortion level (3x down-sampling), degrade at Medium, and vanish at
  // High -- the gradient Table 3 depends on.
  draw_limb(img, cab.shoulder_r, hand, 0.085, arm);
  draw_disc(img, hand, 0.055, arm * 1.12f);

  if (config.pixel_noise > 0.0) {
    for (float& p : img.pixels()) {
      p += static_cast<float>(rng.gaussian(0.0, config.pixel_noise));
    }
  }
  img.clamp();
  return img;
}

}  // namespace darnet::vision
