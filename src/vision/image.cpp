#include "vision/image.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace darnet::vision {

Image::Image(int width, int height, float fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Image: dimensions must be positive");
  }
}

float& Image::at(int x, int y) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw std::out_of_range("Image::at: out of bounds");
  }
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

float Image::at(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw std::out_of_range("Image::at: out of bounds");
  }
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

float Image::sample(int x, int y) const noexcept {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return 0.0f;
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void Image::blend(int x, int y, float value, float alpha) noexcept {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  float& p = pixels_[static_cast<std::size_t>(y) * width_ + x];
  p = (1.0f - alpha) * p + alpha * value;
}

void Image::clamp() {
  for (float& p : pixels_) p = std::clamp(p, 0.0f, 1.0f);
}

Image resize_nearest(const Image& src, int new_width, int new_height) {
  if (src.empty()) throw std::invalid_argument("resize_nearest: empty image");
  Image dst(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    const int sy = std::min(src.height() - 1,
                            static_cast<int>(static_cast<long>(y) *
                                             src.height() / new_height));
    for (int x = 0; x < new_width; ++x) {
      const int sx = std::min(src.width() - 1,
                              static_cast<int>(static_cast<long>(x) *
                                               src.width() / new_width));
      dst.at(x, y) = src.at(sx, sy);
    }
  }
  return dst;
}

Image resize_box_average(const Image& src, int new_width, int new_height) {
  if (src.empty()) {
    throw std::invalid_argument("resize_box_average: empty image");
  }
  if (new_width > src.width() || new_height > src.height()) {
    throw std::invalid_argument(
        "resize_box_average: up-scaling not supported");
  }
  Image dst(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    const int sy0 = static_cast<int>(static_cast<long>(y) * src.height() /
                                     new_height);
    const int sy1 = std::max(
        sy0 + 1, static_cast<int>(static_cast<long>(y + 1) * src.height() /
                                  new_height));
    for (int x = 0; x < new_width; ++x) {
      const int sx0 = static_cast<int>(static_cast<long>(x) * src.width() /
                                       new_width);
      const int sx1 = std::max(
          sx0 + 1, static_cast<int>(static_cast<long>(x + 1) * src.width() /
                                    new_width));
      double acc = 0.0;
      for (int sy = sy0; sy < sy1; ++sy) {
        for (int sx = sx0; sx < sx1; ++sx) acc += src.at(sx, sy);
      }
      dst.at(x, y) = static_cast<float>(
          acc / (static_cast<double>(sy1 - sy0) * (sx1 - sx0)));
    }
  }
  return dst;
}

tensor::Tensor to_batch_tensor(std::span<const Image> images) {
  if (images.empty()) {
    throw std::invalid_argument("to_batch_tensor: empty batch");
  }
  const int w = images.front().width();
  const int h = images.front().height();
  tensor::Tensor batch({static_cast<int>(images.size()), 1, h, w});
  const std::size_t stride = static_cast<std::size_t>(w) * h;
  for (std::size_t i = 0; i < images.size(); ++i) {
    if (images[i].width() != w || images[i].height() != h) {
      throw std::invalid_argument("to_batch_tensor: mixed image sizes");
    }
    std::copy(images[i].pixels().begin(), images[i].pixels().end(),
              batch.data() + i * stride);
  }
  return batch;
}

Image from_batch_tensor(const tensor::Tensor& batch, int index) {
  if (batch.rank() != 4 || batch.dim(1) != 1) {
    throw std::invalid_argument("from_batch_tensor: [N, 1, H, W] required");
  }
  if (index < 0 || index >= batch.dim(0)) {
    throw std::out_of_range("from_batch_tensor: index out of range");
  }
  const int h = batch.dim(2), w = batch.dim(3);
  Image img(w, h);
  const std::size_t stride = static_cast<std::size_t>(w) * h;
  const float* src = batch.data() + static_cast<std::size_t>(index) * stride;
  std::copy(src, src + stride, img.pixels().begin());
  return img;
}

void write_pgm(const std::string& path, const Image& image) {
  if (image.empty()) throw std::invalid_argument("write_pgm: empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  for (float p : image.pixels()) {
    const auto v = static_cast<std::uint8_t>(
        std::clamp(p, 0.0f, 1.0f) * 255.0f + 0.5f);
    out.put(static_cast<char>(v));
  }
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

std::string to_ascii(const Image& image, int max_width) {
  static constexpr std::string_view ramp = " .:-=+*#%@";
  const int w = std::min(max_width, image.width());
  const Image scaled =
      (w == image.width())
          ? image
          : resize_nearest(image, w, std::max(1, image.height() * w /
                                                     image.width()));
  std::string out;
  // Terminal cells are ~2x taller than wide; skip every other row.
  for (int y = 0; y < scaled.height(); y += 2) {
    for (int x = 0; x < scaled.width(); ++x) {
      const float v = std::clamp(scaled.at(x, y), 0.0f, 1.0f);
      out += ramp[static_cast<std::size_t>(v * (ramp.size() - 1) + 0.5f)];
    }
    out += '\n';
  }
  return out;
}

}  // namespace darnet::vision
