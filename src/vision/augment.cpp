#include "vision/augment.hpp"

#include <algorithm>
#include <stdexcept>

namespace darnet::vision {

Image augment(const Image& source, const AugmentConfig& config,
              util::Rng& rng) {
  if (source.empty()) throw std::invalid_argument("augment: empty image");
  const int w = source.width(), h = source.height();

  const float brightness = static_cast<float>(
      rng.uniform(-config.brightness_delta, config.brightness_delta));
  const float contrast = static_cast<float>(
      rng.uniform(1.0 - config.contrast_delta, 1.0 + config.contrast_delta));
  const int max_shift = std::max(0, config.max_shift_px);
  const int dx = static_cast<int>(rng.uniform_int(-max_shift, max_shift));
  const int dy = static_cast<int>(rng.uniform_int(-max_shift, max_shift));
  const bool flip = rng.chance(config.hflip_probability);

  Image out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int sx0 = flip ? w - 1 - x : x;
      const float v = source.sample(sx0 - dx, y - dy);
      // Contrast pivots around mid-gray so dark scenes stay dark.
      out.at(x, y) = (v - 0.5f) * contrast + 0.5f + brightness;
    }
  }
  out.clamp();
  return out;
}

tensor::Tensor augment_batch(const tensor::Tensor& frames,
                             const AugmentConfig& config, util::Rng& rng) {
  if (frames.rank() != 4 || frames.dim(1) != 1) {
    throw std::invalid_argument("augment_batch: [N, 1, H, W] required");
  }
  tensor::Tensor out(frames.shape());
  const int n = frames.dim(0);
  const std::size_t stride =
      static_cast<std::size_t>(frames.dim(2)) * frames.dim(3);
  for (int i = 0; i < n; ++i) {
    const Image img = from_batch_tensor(frames, i);
    const Image aug = augment(img, config, rng);
    std::copy(aug.pixels().begin(), aug.pixels().end(),
              out.data() + static_cast<std::size_t>(i) * stride);
  }
  return out;
}

}  // namespace darnet::vision
