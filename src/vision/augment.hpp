// Training-time image augmentation. The paper fine-tunes Inception-V3
// through the TensorFlow pipeline, which augments implicitly; here
// augmentation is an explicit, testable stage that the DarNet trainer can
// apply to frame batches.
#pragma once

#include "util/rng.hpp"
#include "vision/image.hpp"

namespace darnet::vision {

struct AugmentConfig {
  double brightness_delta = 0.12;  // uniform +/- additive shift
  double contrast_delta = 0.15;    // uniform multiplicative (1 +/- delta)
  int max_shift_px = 2;            // random translation, zero-filled
  double hflip_probability = 0.0;  // off by default: the cabin is chiral
};

/// Augment one image (returns a transformed copy).
[[nodiscard]] Image augment(const Image& source, const AugmentConfig& config,
                            util::Rng& rng);

/// Augment every frame of an NCHW batch [N, 1, H, W] in place-ish
/// (returns a new tensor of the same shape).
[[nodiscard]] tensor::Tensor augment_batch(const tensor::Tensor& frames,
                                           const AugmentConfig& config,
                                           util::Rng& rng);

}  // namespace darnet::vision
