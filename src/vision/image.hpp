// Grayscale image type plus the resize / IO primitives the privacy pipeline
// needs (nearest-neighbour down-sampling is the paper's distortion filter).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace darnet::vision {

/// Row-major grayscale image with intensities in [0, 1].
class Image {
 public:
  Image() = default;
  Image(int width, int height, float fill = 0.0f);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }

  [[nodiscard]] float& at(int x, int y);
  [[nodiscard]] float at(int x, int y) const;

  /// Clamped read: out-of-bounds coordinates return 0.
  [[nodiscard]] float sample(int x, int y) const noexcept;

  /// Blend `value` over the pixel with opacity `alpha` (bounds-checked,
  /// silently ignores out-of-range coordinates -- drawing primitives clip).
  void blend(int x, int y, float value, float alpha = 1.0f) noexcept;

  [[nodiscard]] std::span<float> pixels() noexcept { return pixels_; }
  [[nodiscard]] std::span<const float> pixels() const noexcept {
    return pixels_;
  }

  /// Clamp every pixel into [0, 1].
  void clamp();

 private:
  int width_{0};
  int height_{0};
  std::vector<float> pixels_;
};

/// Nearest-neighbour resampling (both down- and up-scaling), as used by the
/// paper's distortion module.
[[nodiscard]] Image resize_nearest(const Image& src, int new_width,
                                   int new_height);

/// Box-average down-sampling: each destination pixel is the mean of its
/// source box. The alternative distortion kernel evaluated against the
/// paper's nearest-neighbour choice in bench_ablation_distortion
/// (averaging preserves more low-frequency content per transmitted byte).
/// Requires new dimensions <= source dimensions.
[[nodiscard]] Image resize_box_average(const Image& src, int new_width,
                                       int new_height);

/// Pack a batch of equally-sized images as an NCHW tensor [N, 1, H, W].
[[nodiscard]] tensor::Tensor to_batch_tensor(std::span<const Image> images);

/// Extract image `index` from a [N, 1, H, W] tensor.
[[nodiscard]] Image from_batch_tensor(const tensor::Tensor& batch, int index);

/// Write a binary 8-bit PGM (for Figure 4's distortion examples).
void write_pgm(const std::string& path, const Image& image);

/// Coarse ASCII rendering for terminal previews.
[[nodiscard]] std::string to_ascii(const Image& image, int max_width = 48);

}  // namespace darnet::vision
