// Work-queue thread pool and `parallel_for` -- DarNet's parallel execution
// substrate.
//
// Design goals (see DESIGN.md "Threading model"):
//  * Determinism: `parallel_for` splits [begin, end) into fixed chunks that
//    depend only on the range, the grain and the configured thread count --
//    never on scheduling. Each index is processed by exactly one chunk, so
//    any kernel whose chunks touch disjoint output rows is bit-for-bit
//    reproducible for *any* thread count.
//  * Exact serial path: with an effective thread count of 1 (or a range
//    smaller than one grain) the body runs inline on the caller's thread;
//    the pool machinery is never touched.
//  * Exception propagation: the first exception thrown by any chunk is
//    captured and rethrown on the calling thread once the region finishes;
//    the pool remains usable afterwards.
//  * No nested parallelism: a `parallel_for` issued from inside a worker
//    runs inline (serial), so kernels can parallelise unconditionally.
//
// The effective thread count defaults to the `DARNET_THREADS` environment
// variable, falling back to `std::thread::hardware_concurrency()`; it can
// be overridden programmatically with `set_thread_count` (tests, benches).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "sync/sync.hpp"

namespace darnet::parallel {

/// Chunked range body: invoked as body(chunk_begin, chunk_end).
using RangeBody = std::function<void(std::int64_t, std::int64_t)>;

/// A fixed-size pool of helper threads executing chunked index ranges.
/// The calling thread always participates, so a pool with W workers gives
/// W+1-way concurrency. Thread-safe: concurrent for_range calls from
/// different threads are serialised.
class ThreadPool {
 public:
  /// Spawn `workers` helper threads (0 is valid: everything runs inline).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const noexcept { return worker_count_; }
  /// Total concurrency (workers + the calling thread).
  [[nodiscard]] int concurrency() const noexcept { return workers() + 1; }

  /// Execute body over [begin, end) in chunks of at least `grain` indices.
  /// Blocks until every chunk has run; rethrows the first chunk exception.
  void for_range(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const RangeBody& body);

 private:
  struct Region;  // one active for_range

  void worker_loop();
  static void run_chunks(Region& region);

  const int worker_count_;

  // Swapped out under mu_ by the destructor and joined lock-free (no lock
  // may be held across a join).
  std::vector<std::thread> threads_ DARNET_GUARDED_BY(mu_);

  sync::Mutex mu_{"parallel/pool"};
  sync::CondVar wake_;  // workers wait here for a new region
  sync::CondVar done_;  // caller waits here for completion
  Region* region_ DARNET_GUARDED_BY(mu_){nullptr};
  std::uint64_t epoch_ DARNET_GUARDED_BY(mu_){0};
  // Workers still draining the current region.
  int pending_ DARNET_GUARDED_BY(mu_){0};
  bool stop_ DARNET_GUARDED_BY(mu_){false};

  // Serialises concurrent for_range callers; always acquired before mu_
  // (lock order: parallel/pool_submit -> parallel/pool).
  sync::Mutex submit_mu_{"parallel/pool_submit"};
};

/// Effective thread count: `set_thread_count` override if any, else the
/// `DARNET_THREADS` environment variable, else hardware concurrency.
/// Always >= 1.
[[nodiscard]] int thread_count() noexcept;

/// Override the effective thread count (and resize the global pool).
/// Intended for tests and benches; not safe to call concurrently with
/// in-flight parallel_for regions on other threads.
void set_thread_count(int count);

/// True while the current thread is executing a parallel_for chunk (used
/// to run nested regions inline).
[[nodiscard]] bool in_parallel_region() noexcept;

/// The shared process-wide pool, sized to thread_count() - 1 workers.
/// Created lazily on first use.
[[nodiscard]] ThreadPool& global_pool();

/// Out-of-line slow path of parallel_for: type-erased body shipped to the
/// global pool. Call parallel_for below instead.
void parallel_for_impl(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, const RangeBody& body);

/// Run body(chunk_begin, chunk_end) over [begin, end) on the global pool.
/// `grain` is the minimum chunk size; chunks are additionally sized so
/// each thread gets a handful of chunks (dynamic load balancing without
/// tiny chunks). Serial (inline) when the effective thread count is 1,
/// when called from inside another region, or when the range fits one
/// grain.
///
/// Written as a template so the serial path invokes the callable directly:
/// no std::function is materialised, so a thread-count-1 inference step
/// performs zero heap allocations here (the zero-alloc hot-path contract).
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Body&& body) {
  if (begin >= end) return;
  if (thread_count() <= 1 || in_parallel_region()) {
    body(begin, end);
    return;
  }
  parallel_for_impl(begin, end, grain, RangeBody(std::forward<Body>(body)));
}

/// A dedicated long-running thread for service loops (e.g. the serve
/// scheduler's batching workers). Distinct from the ThreadPool: pool
/// workers execute short chunked regions and must never block on external
/// events, whereas a ServiceThread runs one long-lived body that may wait
/// on queues. Lives in src/parallel because the parallel layer owns all
/// thread creation in the tree (darnet_lint: thread-outside-parallel).
///
/// Join semantics: join() blocks until the body returns; the destructor
/// joins if still joinable. The body is responsible for observing its own
/// stop signal -- ServiceThread provides no cancellation.
class ServiceThread {
 public:
  ServiceThread() = default;
  explicit ServiceThread(std::function<void()> body);
  ~ServiceThread();

  ServiceThread(ServiceThread&& other) noexcept = default;
  ServiceThread& operator=(ServiceThread&& other) noexcept;
  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  [[nodiscard]] bool joinable() const noexcept { return thread_.joinable(); }
  void join();

 private:
  // Owner-confined: only the constructing/moving thread joins it.
  std::thread thread_ DARNET_THREAD_LOCAL;
};

}  // namespace darnet::parallel
