#include "parallel/pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "check/check.hpp"
#include "obs/obs.hpp"

namespace darnet::parallel {

namespace {

thread_local bool t_in_region = false;

constexpr int kMaxThreads = 256;

int env_thread_count() noexcept {
  const char* env = std::getenv("DARNET_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1) {
      return static_cast<int>(std::min<long>(parsed, kMaxThreads));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, unsigned{kMaxThreads}));
}

// Global pool state. The pool is recreated when set_thread_count changes
// the effective count; a mutex guards the (rare) accessor path.
sync::Mutex g_pool_mu{"parallel/global_pool"};
std::shared_ptr<ThreadPool> g_pool;          // guarded by g_pool_mu
std::atomic<int> g_thread_count{0};          // 0 = not yet initialised

std::shared_ptr<ThreadPool> acquire_pool() {
  sync::Lock lock(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_shared<ThreadPool>(thread_count() - 1);
    DARNET_GAUGE_SET("parallel/threads", thread_count());
  }
  return g_pool;
}

}  // namespace

struct ThreadPool::Region {
  Region(std::int64_t begin_in, std::int64_t end_in, std::int64_t chunk_in,
         std::int64_t nchunks_in, const RangeBody* body_in)
      : begin(begin_in),
        chunk(chunk_in),
        nchunks(nchunks_in),
        body(body_in),
        end(end_in) {}

  // Geometry is fixed before the region is published to the workers.
  const std::int64_t begin;
  const std::int64_t chunk;
  const std::int64_t nchunks;
  const RangeBody* const body;
  const std::int64_t end;

  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  sync::Mutex error_mu{"parallel/region_error"};
  std::exception_ptr error DARNET_GUARDED_BY(error_mu);
#ifdef DARNET_CHECKED
  /// Chunk accounting (checked builds): every chunk claimed must be
  /// executed exactly once; on clean completion executed == nchunks.
  std::atomic<std::int64_t> executed{0};
#endif
};

ThreadPool::ThreadPool(int workers) : worker_count_(workers) {
  if (workers < 0 || workers > kMaxThreads) {
    throw std::invalid_argument("ThreadPool: invalid worker count");
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Claim the threads under mu_, then notify and join with no lock held:
  // a join under mu_ would deadlock against workers re-acquiring it to
  // decrement pending_, and notifying under the lock just makes the woken
  // thread immediately block on it.
  std::vector<std::thread> threads;
  {
    sync::Lock lock(mu_);
    stop_ = true;
    threads.swap(threads_);
  }
  DARNET_ASSERT_NOT_HELD(mu_);
  wake_.notify_all();
  for (auto& t : threads) t.join();
}

void ThreadPool::run_chunks(Region& region) {
  const bool was_in_region = t_in_region;
  t_in_region = true;
  for (;;) {
    const std::int64_t c = region.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= region.nchunks || region.failed.load(std::memory_order_relaxed)) {
      break;
    }
    const std::int64_t b = region.begin + c * region.chunk;
    const std::int64_t e = std::min(region.end, b + region.chunk);
    DARNET_CHECK_MSG(b >= region.begin && b < e && e <= region.end,
                     "ThreadPool::run_chunks: chunk bounds escape the region");
#ifdef DARNET_CHECKED
    region.executed.fetch_add(1, std::memory_order_relaxed);
#endif
    try {
      (*region.body)(b, e);
    } catch (...) {
      sync::Lock lock(region.error_mu);
      if (!region.error) region.error = std::current_exception();
      region.failed.store(true, std::memory_order_relaxed);
    }
  }
  t_in_region = was_in_region;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Region* region = nullptr;
    {
      sync::UniqueLock lock(mu_);
      wake_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      region = region_;
    }
    DARNET_CHECK_MSG(region != nullptr,
                     "ThreadPool::worker_loop: woken without a region");
    run_chunks(*region);
    bool last = false;
    {
      sync::Lock lock(mu_);
      last = (--pending_ == 0);
    }
    // Notify outside the lock so the woken caller never bounces off mu_.
    if (last) done_.notify_all();
  }
}

void ThreadPool::for_range(std::int64_t begin, std::int64_t end,
                           std::int64_t grain, const RangeBody& body) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t range = end - begin;

  // Chunk size: at least `grain`, and large enough that each thread gets
  // only a few chunks (cheap dynamic balancing, bounded overhead). The
  // resulting chunk boundaries depend only on range/grain/concurrency.
  const std::int64_t target = 4 * static_cast<std::int64_t>(concurrency());
  const std::int64_t chunk =
      std::max(grain, (range + target - 1) / target);
  const std::int64_t nchunks = (range + chunk - 1) / chunk;

  if (nchunks <= 1 || workers() == 0 || t_in_region) {
    body(begin, end);  // exact serial path; exceptions propagate directly
    return;
  }

  DARNET_COUNTER_ADD("parallel/regions_total", 1);
  DARNET_COUNTER_ADD("parallel/chunks_total", nchunks);

  sync::Lock submit(submit_mu_);
  Region region(begin, end, chunk, nchunks, &body);

  {
    sync::Lock lock(mu_);
    DARNET_CHECK_MSG(region_ == nullptr && pending_ == 0,
                     "ThreadPool::for_range: region installed while a "
                     "previous region is still draining");
    region_ = &region;
    pending_ = workers();
    ++epoch_;
  }
  wake_.notify_all();

  run_chunks(region);  // the caller participates

  {
    sync::UniqueLock lock(mu_);
    done_.wait(lock, [&] { return pending_ == 0; });
    region_ = nullptr;
  }
#ifdef DARNET_CHECKED
  if (!region.failed.load(std::memory_order_relaxed)) {
    DARNET_CHECK_MSG(
        region.executed.load(std::memory_order_relaxed) == region.nchunks,
        "ThreadPool::for_range: chunk accounting mismatch (some chunk ran "
        "zero or multiple times)");
  }
#endif
  // All workers have drained (pending_ == 0 above), so no writer remains --
  // but take error_mu anyway: the guarded-by contract is unconditional, and
  // the lock also publishes the error written by the last failing worker.
  std::exception_ptr error;
  {
    sync::Lock lock(region.error_mu);
    error = region.error;
  }
  if (error) std::rethrow_exception(error);
}

int thread_count() noexcept {
  int count = g_thread_count.load(std::memory_order_acquire);
  if (count == 0) {
    count = env_thread_count();
    int expected = 0;
    if (!g_thread_count.compare_exchange_strong(expected, count,
                                                std::memory_order_acq_rel)) {
      count = expected;
    }
  }
  return count;
}

void set_thread_count(int count) {
  if (count < 1 || count > kMaxThreads) {
    throw std::invalid_argument("set_thread_count: count must be in [1, 256]");
  }
  DARNET_CHECK_MSG(!t_in_region,
                   "set_thread_count called from inside a parallel region");
  // Swap the pool out under the lock and let the old one be destroyed
  // afterwards: ~ThreadPool joins its workers, and a join must never run
  // while g_pool_mu is held.
  std::shared_ptr<ThreadPool> old;
  {
    sync::Lock lock(g_pool_mu);
    g_thread_count.store(count, std::memory_order_release);
    old.swap(g_pool);  // lazily recreated at the new size
  }
  DARNET_ASSERT_NOT_HELD(g_pool_mu);
  old.reset();
  DARNET_GAUGE_SET("parallel/threads", count);
}

bool in_parallel_region() noexcept { return t_in_region; }

ThreadPool& global_pool() { return *acquire_pool(); }

void parallel_for_impl(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, const RangeBody& body) {
  // The template wrapper in pool.hpp already handled the empty range and
  // the inline (serial) path; re-check cheaply for direct callers.
  if (begin >= end) return;
  if (thread_count() <= 1 || t_in_region) {
    body(begin, end);
    return;
  }
  // Hold a reference so a concurrent set_thread_count cannot destroy the
  // pool mid-region.
  const std::shared_ptr<ThreadPool> pool = acquire_pool();
  pool->for_range(begin, end, grain, body);
}

ServiceThread::ServiceThread(std::function<void()> body)
    : thread_(std::move(body)) {}

ServiceThread::~ServiceThread() {
  if (thread_.joinable()) thread_.join();
}

ServiceThread& ServiceThread::operator=(ServiceThread&& other) noexcept {
  if (this != &other) {
    if (thread_.joinable()) thread_.join();
    thread_ = std::move(other.thread_);
  }
  return *this;
}

void ServiceThread::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace darnet::parallel
