// IMU data types, synthetic trace generation, and windowing.
//
// The paper's phone agent streams accelerometer, gyroscope, gravity and
// rotation sensors (Android sensor manager, 25 ms updates). The RNN is
// trained on windows of 20 samples: 4 Hz sampling over a 5 s horizon.
// The three IMU-visible classes are the phone orientations of Section 5.1:
// texting (waist-to-eye level, either hand), talking (at either ear), and
// the front-right pocket position shared by every other behaviour.
//
// Hardware gate substitution (DESIGN.md): traces are synthesised from a
// physical signal model -- gravity projected through the device attitude,
// road vibration, micro-tremor, tap bursts while texting, re-adjustment
// events while talking, gait/road bumps in the pocket -- with sensor bias
// and noise. Left- and right-hand variants flip the sign of lateral
// gravity, which is exactly the nonlinearity that separates the RNN from
// the linear SVM baseline in the paper's Table 2.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace darnet::imu {

using tensor::Tensor;

/// One timestamped reading of all four sensors.
struct ImuSample {
  double timestamp_s{0.0};
  std::array<float, 3> accel{};     // m/s^2, device frame
  std::array<float, 3> gyro{};      // rad/s
  std::array<float, 3> gravity{};   // m/s^2
  std::array<float, 4> rotation{};  // unit quaternion (w, x, y, z)
};

/// Channels per sample when flattened for the models.
inline constexpr int kImuChannels = 13;

/// Paper window geometry: 4 Hz x 5 s = 20 steps.
inline constexpr int kWindowSteps = 20;
inline constexpr double kWindowSeconds = 5.0;
inline constexpr double kWindowHz = 4.0;

/// The five device orientations of Section 5.1.
enum class PhoneOrientation {
  kTextingLeft = 0,
  kTextingRight = 1,
  kTalkingLeft = 2,
  kTalkingRight = 3,
  kPocket = 4,
};

/// The three IMU sequence classes (Table 1: behaviours without phone use
/// count as "Normal Driving" for the IMU data).
enum class ImuClass { kNormal = 0, kTalking = 1, kTexting = 2 };
inline constexpr int kImuClassCount = 3;

[[nodiscard]] ImuClass imu_class_of(PhoneOrientation orientation) noexcept;
[[nodiscard]] const char* imu_class_name(ImuClass c) noexcept;

struct ImuGenConfig {
  double sample_hz = 40.0;       // Android sensor manager: 25 ms updates
  double duration_s = kWindowSeconds;
  double road_roughness = 1.2;   // scales shared vehicle vibration
  double sensor_noise = 2.2;     // scales white measurement noise
  double attitude_wander = 1.5;  // scales slow drift of the device attitude

  // Per-driver style (core::DriverStyle writes these): habitual grip.
  double tremor_scale = 1.0;        // scales hand micro-tremor
  double attitude_roll_bias = 0.0;  // radians added to the nominal attitude
  double attitude_pitch_bias = 0.0;
};

/// Generate a raw sensor trace for one device orientation.
[[nodiscard]] std::vector<ImuSample> generate_trace(
    PhoneOrientation orientation, const ImuGenConfig& config, util::Rng& rng);

/// Resample a trace to the paper's 4 Hz / 20-step window and pack it as a
/// [kWindowSteps, kImuChannels] tensor (accel, gyro, gravity, rotation).
/// The trace must span at least kWindowSeconds.
[[nodiscard]] Tensor to_window(std::span<const ImuSample> trace);

/// Convenience: a batch of windows, one per requested orientation, as
/// [N, kWindowSteps, kImuChannels].
[[nodiscard]] Tensor generate_windows(
    std::span<const PhoneOrientation> orientations, const ImuGenConfig& config,
    util::Rng& rng);

/// Flatten windows [N, T, C] into SVM features [N, T*C].
[[nodiscard]] Tensor flatten_windows(const Tensor& windows);

}  // namespace darnet::imu
