#include "imu/imu.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace darnet::imu {

namespace {

constexpr double kGravity = 9.81;

struct Vec3 {
  double x{0}, y{0}, z{0};
};

struct Quat {
  double w{1}, x{0}, y{0}, z{0};
};

Quat quat_from_euler(double roll, double pitch, double yaw) {
  const double cr = std::cos(roll / 2), sr = std::sin(roll / 2);
  const double cp = std::cos(pitch / 2), sp = std::sin(pitch / 2);
  const double cy = std::cos(yaw / 2), sy = std::sin(yaw / 2);
  return {cr * cp * cy + sr * sp * sy, sr * cp * cy - cr * sp * sy,
          cr * sp * cy + sr * cp * sy, cr * cp * sy - sr * sp * cy};
}

/// Rotate world-frame vector into the device frame described by q.
Vec3 rotate_inverse(const Quat& q, const Vec3& v) {
  // v' = q^-1 * v * q for unit quaternion (conjugate = inverse).
  const double w = q.w, x = -q.x, y = -q.y, z = -q.z;
  // t = 2 * cross(q_vec, v)
  const double tx = 2 * (y * v.z - z * v.y);
  const double ty = 2 * (z * v.x - x * v.z);
  const double tz = 2 * (x * v.y - y * v.x);
  return {v.x + w * tx + (y * tz - z * ty),
          v.y + w * ty + (z * tx - x * tz),
          v.z + w * tz + (x * ty - y * tx)};
}

struct OrientationProfile {
  double roll, pitch, yaw;        // nominal device attitude (radians)
  double tremor;                  // hand micro-tremor amplitude (m/s^2)
  double tap_rate_hz;             // texting tap bursts (0 = none)
  double adjust_rate_hz;          // talking re-adjustment events (0 = none)
  double gait_amp;                // pocket: leg/road coupling (m/s^2)
  double gyro_jitter;             // rad/s baseline rotation noise
};

OrientationProfile profile_of(PhoneOrientation o) {
  using enum PhoneOrientation;
  constexpr double deg = std::numbers::pi / 180.0;
  switch (o) {
    case kTextingLeft:
      return {-35 * deg, 40 * deg, 10 * deg, 0.25, 3.5, 0.0, 0.0, 0.05};
    case kTextingRight:
      return {35 * deg, 40 * deg, -10 * deg, 0.25, 3.5, 0.0, 0.0, 0.05};
    case kTalkingLeft:
      return {-80 * deg, 5 * deg, 25 * deg, 0.12, 0.0, 0.35, 0.0, 0.03};
    case kTalkingRight:
      return {80 * deg, 5 * deg, -25 * deg, 0.12, 0.0, 0.35, 0.0, 0.03};
    case kPocket:
      return {5 * deg, 85 * deg, 0 * deg, 0.03, 0.0, 0.0, 0.45, 0.015};
  }
  throw std::invalid_argument("profile_of: unknown orientation");
}

}  // namespace

ImuClass imu_class_of(PhoneOrientation orientation) noexcept {
  switch (orientation) {
    case PhoneOrientation::kTextingLeft:
    case PhoneOrientation::kTextingRight:
      return ImuClass::kTexting;
    case PhoneOrientation::kTalkingLeft:
    case PhoneOrientation::kTalkingRight:
      return ImuClass::kTalking;
    case PhoneOrientation::kPocket:
      return ImuClass::kNormal;
  }
  return ImuClass::kNormal;
}

const char* imu_class_name(ImuClass c) noexcept {
  switch (c) {
    case ImuClass::kNormal:
      return "Normal";
    case ImuClass::kTalking:
      return "Talking";
    case ImuClass::kTexting:
      return "Texting";
  }
  return "?";
}

std::vector<ImuSample> generate_trace(PhoneOrientation orientation,
                                      const ImuGenConfig& config,
                                      util::Rng& rng) {
  if (config.sample_hz <= 0.0 || config.duration_s <= 0.0) {
    throw std::invalid_argument("generate_trace: invalid config");
  }
  const OrientationProfile prof = profile_of(orientation);
  const auto steps =
      static_cast<std::size_t>(config.duration_s * config.sample_hz) + 1;
  const double dt = 1.0 / config.sample_hz;

  // Per-trace randomness: attitude offset (how this driver holds the
  // device), sensor bias, vibration phases, event schedules.
  const double wander = 0.12 * config.attitude_wander;
  double roll = prof.roll + config.attitude_roll_bias +
                rng.gaussian(0.0, wander);
  double pitch = prof.pitch + config.attitude_pitch_bias +
                 rng.gaussian(0.0, wander);
  double yaw = prof.yaw + rng.gaussian(0.0, 2.0 * wander);
  const Vec3 accel_bias{rng.gaussian(0, 0.04), rng.gaussian(0, 0.04),
                        rng.gaussian(0, 0.04)};
  const Vec3 gyro_bias{rng.gaussian(0, 0.004), rng.gaussian(0, 0.004),
                       rng.gaussian(0, 0.004)};
  const double vib_f1 = rng.uniform(9.0, 14.0);   // engine/road band
  const double vib_f2 = rng.uniform(1.2, 2.4);    // body sway band
  const double vib_p1 = rng.uniform(0.0, 2 * std::numbers::pi);
  const double vib_p2 = rng.uniform(0.0, 2 * std::numbers::pi);
  // A vehicle turn occurs in roughly half the windows: world-frame yaw
  // rate bump shared by every orientation.
  const bool has_turn = rng.chance(0.5);
  const double turn_t0 = rng.uniform(0.3, config.duration_s * 0.7);
  const double turn_len = rng.uniform(1.0, 2.5);
  const double turn_rate = rng.gaussian(0.0, 0.35);

  // Tap bursts (texting): 2-4 bursts at random times, each a short run of
  // sharp accelerometer pulses -- temporal structure a linear model on raw
  // samples cannot phase-align.
  std::vector<double> tap_times;
  if (prof.tap_rate_hz > 0.0) {
    const int bursts = static_cast<int>(rng.uniform_int(2, 4));
    for (int b = 0; b < bursts; ++b) {
      const double t0 = rng.uniform(0.1, config.duration_s - 0.6);
      const int taps = static_cast<int>(rng.uniform_int(3, 7));
      for (int k = 0; k < taps; ++k) {
        tap_times.push_back(t0 + k / prof.tap_rate_hz +
                            rng.gaussian(0.0, 0.02));
      }
    }
  }
  // Re-adjustment events (talking): 0-2 slow wrist rotations.
  std::vector<double> adjust_times;
  if (prof.adjust_rate_hz > 0.0) {
    const int events = static_cast<int>(rng.uniform_int(0, 2));
    for (int e = 0; e < events; ++e) {
      adjust_times.push_back(rng.uniform(0.2, config.duration_s - 0.8));
    }
  }
  const double gait_f = rng.uniform(1.6, 2.2);
  const double gait_p = rng.uniform(0.0, 2 * std::numbers::pi);

  std::vector<ImuSample> trace;
  trace.reserve(steps);
  double prev_roll = roll, prev_pitch = pitch, prev_yaw = yaw;
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * dt;

    // Slow attitude wander (random walk, bounded by pull to nominal).
    roll += 0.02 * (prof.roll - roll) * dt +
            rng.gaussian(0.0, 0.01 * config.attitude_wander);
    pitch += 0.02 * (prof.pitch - pitch) * dt +
             rng.gaussian(0.0, 0.01 * config.attitude_wander);
    yaw += rng.gaussian(0.0, 0.012 * config.attitude_wander);

    // Talking re-adjustments tilt the device briefly.
    double adjust_gyro = 0.0;
    for (double t0 : adjust_times) {
      const double u = (t - t0) / 0.6;
      if (u >= 0.0 && u <= 1.0) {
        const double env = std::sin(std::numbers::pi * u);
        roll += 0.010 * env;
        adjust_gyro += 0.8 * env;
      }
    }

    const Quat q = quat_from_euler(roll, pitch, yaw);
    const Vec3 g_dev = rotate_inverse(q, Vec3{0.0, 0.0, kGravity});

    // Vehicle vibration (world frame, mostly vertical) seen in the device
    // frame, plus the orientation-specific activity signal.
    const double vib =
        config.road_roughness *
        (0.18 * std::sin(2 * std::numbers::pi * vib_f1 * t + vib_p1) +
         0.35 * std::sin(2 * std::numbers::pi * vib_f2 * t + vib_p2));
    const Vec3 vib_dev = rotate_inverse(q, Vec3{0.0, 0.05 * vib, vib});

    double tap = 0.0;
    for (double tt : tap_times) {
      const double u = (t - tt) / 0.05;
      if (u >= 0.0 && u <= 1.0) tap += 1.8 * std::exp(-4.0 * u);
    }
    const double gait =
        prof.gait_amp *
        std::sin(2 * std::numbers::pi * gait_f * t + gait_p);

    ImuSample s;
    s.timestamp_s = t;
    const double noise = 0.05 * config.sensor_noise;
    s.gravity = {static_cast<float>(g_dev.x + rng.gaussian(0, noise)),
                 static_cast<float>(g_dev.y + rng.gaussian(0, noise)),
                 static_cast<float>(g_dev.z + rng.gaussian(0, noise))};
    s.accel = {
        static_cast<float>(g_dev.x + vib_dev.x + accel_bias.x +
                           prof.tremor * config.tremor_scale * rng.gaussian() + tap * 0.4 +
                           rng.gaussian(0, noise)),
        static_cast<float>(g_dev.y + vib_dev.y + accel_bias.y +
                           prof.tremor * config.tremor_scale * rng.gaussian() + gait +
                           rng.gaussian(0, noise)),
        static_cast<float>(g_dev.z + vib_dev.z + accel_bias.z +
                           prof.tremor * config.tremor_scale * rng.gaussian() + tap +
                           rng.gaussian(0, noise))};

    // Gyro: finite-difference of the attitude plus jitter, events, turn.
    double turn_gyro = 0.0;
    if (has_turn && t >= turn_t0 && t <= turn_t0 + turn_len) {
      turn_gyro = turn_rate *
                  std::sin(std::numbers::pi * (t - turn_t0) / turn_len);
    }
    const double droll = (roll - prev_roll) / dt;
    const double dpitch = (pitch - prev_pitch) / dt;
    const double dyaw = (yaw - prev_yaw) / dt + turn_gyro;
    s.gyro = {static_cast<float>(droll + gyro_bias.x +
                                 prof.gyro_jitter * rng.gaussian() +
                                 adjust_gyro * 0.3),
              static_cast<float>(dpitch + gyro_bias.y +
                                 prof.gyro_jitter * rng.gaussian() +
                                 tap * 0.08),
              static_cast<float>(dyaw + gyro_bias.z +
                                 prof.gyro_jitter * rng.gaussian())};
    prev_roll = roll;
    prev_pitch = pitch;
    prev_yaw = yaw;

    s.rotation = {static_cast<float>(q.w), static_cast<float>(q.x),
                  static_cast<float>(q.y), static_cast<float>(q.z)};
    trace.push_back(s);
  }
  return trace;
}

Tensor to_window(std::span<const ImuSample> trace) {
  if (trace.size() < 2) {
    throw std::invalid_argument("to_window: trace too short");
  }
  const double span = trace.back().timestamp_s - trace.front().timestamp_s;
  if (span + 1e-9 < kWindowSeconds - 1.0 / kWindowHz) {
    throw std::invalid_argument("to_window: trace shorter than the window");
  }

  Tensor window({kWindowSteps, kImuChannels});
  std::size_t cursor = 0;
  for (int step = 0; step < kWindowSteps; ++step) {
    const double target =
        trace.front().timestamp_s + static_cast<double>(step) / kWindowHz;
    // Advance to the closest sample at or after `target` and linearly
    // interpolate with its predecessor.
    while (cursor + 1 < trace.size() &&
           trace[cursor + 1].timestamp_s < target) {
      ++cursor;
    }
    const ImuSample& a = trace[cursor];
    const ImuSample& b = trace[std::min(cursor + 1, trace.size() - 1)];
    const double dt = b.timestamp_s - a.timestamp_s;
    const double w = dt > 1e-12 ? std::clamp((target - a.timestamp_s) / dt,
                                             0.0, 1.0)
                                : 0.0;
    auto lerp = [w](float x, float y) {
      return static_cast<float>((1.0 - w) * x + w * y);
    };
    float* row = window.data() + static_cast<std::size_t>(step) * kImuChannels;
    for (int k = 0; k < 3; ++k) row[k] = lerp(a.accel[k], b.accel[k]);
    for (int k = 0; k < 3; ++k) row[3 + k] = lerp(a.gyro[k], b.gyro[k]);
    for (int k = 0; k < 3; ++k) row[6 + k] = lerp(a.gravity[k], b.gravity[k]);
    for (int k = 0; k < 4; ++k) row[9 + k] = lerp(a.rotation[k], b.rotation[k]);
  }
  return window;
}

Tensor generate_windows(std::span<const PhoneOrientation> orientations,
                        const ImuGenConfig& config, util::Rng& rng) {
  if (orientations.empty()) {
    throw std::invalid_argument("generate_windows: empty request");
  }
  Tensor batch({static_cast<int>(orientations.size()), kWindowSteps,
                kImuChannels});
  const std::size_t stride =
      static_cast<std::size_t>(kWindowSteps) * kImuChannels;
  for (std::size_t i = 0; i < orientations.size(); ++i) {
    const auto trace = generate_trace(orientations[i], config, rng);
    const Tensor w = to_window(trace);
    std::copy(w.data(), w.data() + stride, batch.data() + i * stride);
  }
  return batch;
}

Tensor flatten_windows(const Tensor& windows) {
  if (windows.rank() != 3) {
    throw std::invalid_argument("flatten_windows: [N, T, C] required");
  }
  return windows.reshaped(
      {windows.dim(0), windows.dim(1) * windows.dim(2)});
}

}  // namespace darnet::imu
