// Statistical summary features over IMU windows -- the classical feature
// representation for SVM-style models (the paper does not specify its SVM
// features; this module provides the standard alternative to raw-window
// input, compared in bench_imu_models).
#pragma once

#include "imu/imu.hpp"

namespace darnet::imu {

/// Features per channel: mean, standard deviation, min, max, energy of
/// the first difference (high-frequency content), and zero-crossing rate
/// of the mean-removed signal.
inline constexpr int kFeaturesPerChannel = 6;
inline constexpr int kSummaryFeatureCount =
    kImuChannels * kFeaturesPerChannel;

/// Summarise one window [T, C] into [kSummaryFeatureCount] features.
[[nodiscard]] Tensor summarize_window(const Tensor& window);

/// Summarise a batch [N, T, C] -> [N, kSummaryFeatureCount].
[[nodiscard]] Tensor summarize_windows(const Tensor& windows);

}  // namespace darnet::imu
