#include "imu/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace darnet::imu {

namespace {

void summarize_into(const float* window, int steps, int channels,
                    float* out) {
  for (int c = 0; c < channels; ++c) {
    double mean = 0.0;
    float mn = window[c], mx = window[c];
    for (int t = 0; t < steps; ++t) {
      const float v = window[static_cast<std::size_t>(t) * channels + c];
      mean += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    mean /= steps;

    double var = 0.0, diff_energy = 0.0;
    int zero_crossings = 0;
    float prev_centered = 0.0f;
    for (int t = 0; t < steps; ++t) {
      const float v = window[static_cast<std::size_t>(t) * channels + c];
      const auto centered = static_cast<float>(v - mean);
      var += static_cast<double>(centered) * centered;
      if (t > 0) {
        const float prev = window[static_cast<std::size_t>(t - 1) * channels + c];
        diff_energy += static_cast<double>(v - prev) * (v - prev);
        if ((centered > 0) != (prev_centered > 0)) ++zero_crossings;
      }
      prev_centered = centered;
    }
    var /= steps;
    diff_energy /= std::max(1, steps - 1);

    float* f = out + static_cast<std::size_t>(c) * kFeaturesPerChannel;
    f[0] = static_cast<float>(mean);
    f[1] = static_cast<float>(std::sqrt(var));
    f[2] = mn;
    f[3] = mx;
    f[4] = static_cast<float>(diff_energy);
    f[5] = static_cast<float>(zero_crossings) / static_cast<float>(steps);
  }
}

}  // namespace

Tensor summarize_window(const Tensor& window) {
  if (window.rank() != 2) {
    throw std::invalid_argument("summarize_window: [T, C] required");
  }
  Tensor out({window.dim(1) * kFeaturesPerChannel});
  summarize_into(window.data(), window.dim(0), window.dim(1), out.data());
  return out;
}

Tensor summarize_windows(const Tensor& windows) {
  if (windows.rank() != 3) {
    throw std::invalid_argument("summarize_windows: [N, T, C] required");
  }
  const int n = windows.dim(0), steps = windows.dim(1), c = windows.dim(2);
  Tensor out({n, c * kFeaturesPerChannel});
  const std::size_t in_stride = static_cast<std::size_t>(steps) * c;
  const std::size_t out_stride =
      static_cast<std::size_t>(c) * kFeaturesPerChannel;
  for (int i = 0; i < n; ++i) {
    summarize_into(windows.data() + static_cast<std::size_t>(i) * in_stride,
                   steps, c,
                   out.data() + static_cast<std::size_t>(i) * out_stride);
  }
  return out;
}

}  // namespace darnet::imu
