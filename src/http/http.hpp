// darnet::http -- a minimal, dependency-free HTTP/1.1 server and client
// over POSIX sockets. This is the wire protocol in front of the serving
// tier (ROADMAP item 3): just enough HTTP to expose POST /classify,
// GET /metrics and GET /healthz to a load balancer, and a tiny blocking
// client so tests and tools/ci/check.sh can exercise the edge over real
// loopback TCP without curl.
//
// Scope is deliberately small: request line + headers + Content-Length
// bodies, `Connection: close` semantics (one request per connection),
// no TLS, no chunked transfer, no pipelining. Anything outside that
// subset earns a 400. The server is an accept loop on a
// parallel::ServiceThread feeding a bounded queue of accepted sockets
// to a small pool of handler ServiceThreads; when the queue is full the
// accept loop answers 503 inline and closes -- overload never grows an
// unbounded backlog (the same bounded-admission posture as
// serve::Server).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "parallel/pool.hpp"
#include "serve/serve.hpp"
#include "sync/sync.hpp"

namespace darnet::http {

/// One parsed request. Header names are lower-cased on parse.
struct Request {
  std::string method;
  std::string target;
  std::string body;
  std::map<std::string, std::string> headers;
};

/// What a handler returns; serialised with Content-Length and
/// Connection: close.
struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// The application hook: called on a handler thread per request. Must be
/// thread-safe (the pool invokes it concurrently).
using Handler = std::function<Response(const Request&)>;

struct HttpServerConfig {
  /// TCP port to bind (loopback). 0 picks an ephemeral port; read it
  /// back via HttpServer::port().
  std::uint16_t port = 0;
  /// Handler threads. Requests that block on inference futures hold one
  /// each, so size this to the acceptable in-flight request count.
  int workers = 2;
  /// Accepted-socket queue bound; beyond it the accept loop answers 503.
  std::size_t pending_capacity = 64;
  /// Largest accepted request (head + body) in bytes; beyond it, 400.
  std::size_t max_request_bytes = 1u << 20;
  /// Clock for request-latency accounting. Null means
  /// std::chrono::steady_clock; src/sim injects a virtual-time source so
  /// the HTTP tier's time math is simulation-drivable (the same seam as
  /// serve::ShardConfig::time_source).
  std::shared_ptr<const serve::TimeSource> time_source;
};

/// The embedded server. Binds and starts serving in the constructor;
/// stop() (idempotent, also run by the destructor) closes the listener,
/// drains queued connections and joins every thread.
class HttpServer {
 public:
  HttpServer(Handler handler, HttpServerConfig config);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves ephemeral port 0 to the real one).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  void stop();

  /// Aggregate counters (consistent snapshot).
  struct Stats {
    std::uint64_t connections{0};
    std::uint64_t requests{0};
    std::uint64_t bad_requests{0};
    std::uint64_t overloaded{0};
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Listener {
    int fd{-1};
  };

  void accept_loop();
  void handler_loop();
  void handle_connection(int fd);
  [[nodiscard]] std::chrono::steady_clock::time_point clock_now()
      const noexcept;

  const Handler handler_;
  const HttpServerConfig config_;
  // Bound before any thread starts; the fd value never changes (stop()
  // shutdown()s it to unblock the accept loop, exactly once).
  const Listener listener_;
  const std::uint16_t port_;

  mutable sync::Mutex mu_{"http/server"};
  sync::CondVar conn_cv_;
  // Accepted sockets awaiting a handler; bounded by pending_capacity
  // (the accept loop answers 503 instead of pushing past it).
  std::deque<int> pending_ DARNET_GUARDED_BY(mu_);
  bool stopping_ DARNET_GUARDED_BY(mu_){false};
  Stats stats_ DARNET_GUARDED_BY(mu_);

  // Claimed (swapped out) under mu_ by the first stop(), joined with no
  // lock held -- the serve::Server drain idiom.
  parallel::ServiceThread acceptor_ DARNET_GUARDED_BY(mu_);
  std::vector<parallel::ServiceThread> workers_ DARNET_GUARDED_BY(mu_);
};

/// Minimal blocking loopback client: one request per call, Connection:
/// close. `status` is 0 when the transport itself failed (connect/read).
struct ClientResponse {
  int status{0};
  std::string body;
};
[[nodiscard]] ClientResponse request(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body = {});
[[nodiscard]] ClientResponse get(const std::string& host, std::uint16_t port,
                                 const std::string& target);
[[nodiscard]] ClientResponse post(const std::string& host,
                                  std::uint16_t port,
                                  const std::string& target,
                                  const std::string& body);

}  // namespace darnet::http
