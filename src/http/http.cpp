#include "http/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace darnet::http {

namespace {

[[nodiscard]] const char* status_text(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

[[nodiscard]] std::string serialise(const Response& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful left to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const Response& response) {
  send_all(fd, serialise(response));
}

/// Reads one request (head + Content-Length body) off `fd`. Returns
/// false on transport error, oversize, or malformed head.
[[nodiscard]] bool read_request(int fd, std::size_t max_bytes,
                                Request& request) {
  std::string buffer;
  std::size_t head_end = std::string::npos;
  char chunk[4096];
  while (true) {
    head_end = buffer.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer.size() > max_bytes) return false;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const std::size_t line_end = buffer.find("\r\n");
  const std::string line = buffer.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (line.compare(sp2 + 1, std::string::npos, "HTTP/1.1") != 0 &&
      line.compare(sp2 + 1, std::string::npos, "HTTP/1.0") != 0) {
    return false;
  }

  // Headers: lower-cased names, trimmed values.
  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    const std::size_t end = buffer.find("\r\n", pos);
    const std::string header = buffer.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) return false;
    std::string name = header.substr(0, colon);
    std::transform(name.begin(), name.end(), name.begin(), [](char c) {
      return static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    });
    std::size_t value_begin = colon + 1;
    while (value_begin < header.size() && header[value_begin] == ' ') {
      ++value_begin;
    }
    request.headers[name] = header.substr(value_begin);
  }

  std::size_t content_length = 0;
  const auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    try {
      content_length = std::stoul(it->second);
    } catch (...) {
      return false;
    }
  }
  const std::size_t body_begin = head_end + 4;
  if (body_begin + content_length > max_bytes) return false;
  while (buffer.size() < body_begin + content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  request.body = buffer.substr(body_begin, content_length);
  return true;
}

[[nodiscard]] int bind_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("http::HttpServer: socket() failed");
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 64) < 0) {
    (void)::close(fd);
    throw std::runtime_error("http::HttpServer: bind/listen failed");
  }
  return fd;
}

[[nodiscard]] std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    (void)::close(fd);
    throw std::runtime_error("http::HttpServer: getsockname failed");
  }
  return ntohs(addr.sin_port);
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerConfig config)
    : handler_(std::move(handler)),
      config_(config),
      listener_{bind_loopback(config.port)},
      port_(bound_port(listener_.fd)) {
  if (!handler_) {
    (void)::close(listener_.fd);
    throw std::invalid_argument("http::HttpServer: handler must be set");
  }
  if (config_.workers < 1) {
    (void)::close(listener_.fd);
    throw std::invalid_argument("http::HttpServer: workers must be >= 1");
  }
  if (config_.pending_capacity < 1) {
    (void)::close(listener_.fd);
    throw std::invalid_argument(
        "http::HttpServer: pending_capacity must be >= 1");
  }
  // Start the threads before taking mu_ (their loops acquire it from
  // their own stacks), then publish the handles under the lock.
  std::vector<parallel::ServiceThread> workers;
  workers.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers.emplace_back([this] { handler_loop(); });
  }
  parallel::ServiceThread acceptor([this] { accept_loop(); });
  sync::Lock lock(mu_);
  workers_ = std::move(workers);
  acceptor_ = std::move(acceptor);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listener_.fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or irrecoverable
    }
    DARNET_COUNTER_ADD("http/connections_total", 1);
    bool overloaded = false;
    {
      sync::Lock lock(mu_);
      ++stats_.connections;
      if (stopping_) {
        overloaded = true;  // refuse late arrivals during shutdown
      } else if (pending_.size() >= config_.pending_capacity) {
        // Bounded backlog: beyond capacity the edge answers 503 inline
        // rather than queueing unboundedly.
        overloaded = true;
        ++stats_.overloaded;
      } else {
        pending_.push_back(fd);
      }
    }
    if (overloaded) {
      DARNET_COUNTER_ADD("http/overload_rejected_total", 1);
      Response response;
      response.status = 503;
      response.body = "{\"error\":\"overloaded\"}";
      send_response(fd, response);
      (void)::close(fd);
    } else {
      conn_cv_.notify_one();
    }
  }
}

void HttpServer::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      sync::UniqueLock lock(mu_);
      conn_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping, backlog drained
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

std::chrono::steady_clock::time_point HttpServer::clock_now() const noexcept {
  return config_.time_source ? config_.time_source->now()
                             : std::chrono::steady_clock::now();
}

void HttpServer::handle_connection(int fd) {
  const auto started = clock_now();
  Request request;
  Response response;
  if (!read_request(fd, config_.max_request_bytes, request)) {
    response.status = 400;
    response.body = "{\"error\":\"malformed request\"}";
    DARNET_COUNTER_ADD("http/bad_requests_total", 1);
    sync::Lock lock(mu_);
    ++stats_.bad_requests;
  } else {
    DARNET_COUNTER_ADD("http/requests_total", 1);
    {
      sync::Lock lock(mu_);
      ++stats_.requests;
    }
    try {
      response = handler_(request);
    } catch (const std::exception&) {
      response = Response{};
      response.status = 500;
      response.body = "{\"error\":\"handler failed\"}";
    }
    if (response.status >= 400 && response.status < 500) {
      DARNET_COUNTER_ADD("http/bad_requests_total", 1);
      sync::Lock lock(mu_);
      ++stats_.bad_requests;
    }
  }
  send_response(fd, response);
  (void)::close(fd);
  DARNET_HISTOGRAM_NS(
      "http/request_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock_now() -
                                                           started)
          .count());
}

void HttpServer::stop() {
  parallel::ServiceThread acceptor;
  std::vector<parallel::ServiceThread> workers;
  bool first = false;
  {
    sync::Lock lock(mu_);
    first = !stopping_;
    stopping_ = true;
    acceptor = std::move(acceptor_);
    workers.swap(workers_);
  }
  if (first) {
    // Unblock the accept loop; its next accept() fails and it exits.
    ::shutdown(listener_.fd, SHUT_RDWR);
  }
  conn_cv_.notify_all();
  if (acceptor.joinable()) acceptor.join();
  for (auto& worker : workers) worker.join();
  if (first) {
    (void)::close(listener_.fd);
    // Handlers drain the backlog before exiting (the wait predicate only
    // returns on empty), so anything left here arrived after the join --
    // refuse it.
    std::deque<int> leftovers;
    {
      sync::Lock lock(mu_);
      leftovers.swap(pending_);
    }
    for (const int fd : leftovers) (void)::close(fd);
  }
}

HttpServer::Stats HttpServer::stats() const {
  sync::Lock lock(mu_);
  return stats_;
}

ClientResponse request(const std::string& host, std::uint16_t port,
                       const std::string& method, const std::string& target,
                       const std::string& body) {
  ClientResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    (void)::close(fd);
    return out;
  }
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host + "\r\n";
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  wire += body;
  send_all(fd, wire);

  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  (void)::close(fd);

  // "HTTP/1.1 <status> ..." + head, body after the blank line.
  const std::size_t sp = reply.find(' ');
  if (sp == std::string::npos || sp + 4 > reply.size()) return out;
  try {
    out.status = std::stoi(reply.substr(sp + 1, 3));
  } catch (...) {
    return out;
  }
  const std::size_t head_end = reply.find("\r\n\r\n");
  if (head_end != std::string::npos) {
    out.body = reply.substr(head_end + 4);
  }
  return out;
}

ClientResponse get(const std::string& host, std::uint16_t port,
                   const std::string& target) {
  return request(host, port, "GET", target);
}

ClientResponse post(const std::string& host, std::uint16_t port,
                    const std::string& target, const std::string& body) {
  return request(host, port, "POST", target, body);
}

}  // namespace darnet::http
