// darnet::http::Edge -- the classify/metrics/health surface of the HTTP
// edge: route dispatch plus the (deliberately tiny) JSON body protocol.
//
//   POST /classify   {"session":7,"tenant":1,"frame":[...],"imu":[...]}
//                    -> 200 {"session":7,"status":"ok","class":3,
//                            "alert":false,"degraded":false,
//                            "latency_us":184,"version":1}
//                    `frame`/`imu` are flat row-major float arrays whose
//                    lengths must match the configured tensor shapes;
//                    `tenant` and `imu` are optional (default tenant 0 /
//                    zero window). Shed/rejected/timeout requests map to
//                    HTTP 503 with "status" naming the verdict.
//   GET  /metrics    -> 200, the process-wide obs registry as JSON
//                    (docs/OBSERVABILITY.md names every row).
//   GET  /healthz    -> 200 {"status":"ok","shards":N,"version":V}
//
// The Edge borrows the Router: construct the router first, stop() the
// edge before draining the router (handler threads may be parked on
// inference futures, which drain resolves).
#pragma once

#include <cstdint>
#include <vector>

#include "http/http.hpp"
#include "serve/router.hpp"

namespace darnet::http {

struct EdgeConfig {
  HttpServerConfig http;
  /// Expected single-request tensor shapes (leading batch dim 1), e.g.
  /// {1, 16} frames and {1, 8, 3} IMU windows for the synthetic fleet
  /// ensemble.
  std::vector<int> frame_shape{1, 16};
  std::vector<int> imu_shape{1, 8, 3};
  /// Per-request deadline budget; <= 0 serves without a deadline.
  std::int64_t deadline_us = 0;
};

class Edge {
 public:
  /// `router` must outlive this Edge (and be drained only after stop()).
  Edge(serve::Router& router, EdgeConfig config);

  [[nodiscard]] std::uint16_t port() const noexcept {
    return server_.port();
  }
  void stop() { server_.stop(); }
  [[nodiscard]] HttpServer::Stats http_stats() const {
    return server_.stats();
  }

 private:
  [[nodiscard]] Response handle(const Request& request);
  [[nodiscard]] Response handle_classify(const Request& request);

  serve::Router& router_;
  const EdgeConfig config_;
  HttpServer server_;  // last member: its threads call handle()
};

}  // namespace darnet::http
