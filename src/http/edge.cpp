#include "http/edge.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace darnet::http {

namespace {

using tensor::Tensor;

/// Locates `"key"` at top level and returns the offset just past the
/// following ':', or npos. Tolerant of whitespace, not of nesting -- the
/// classify body is flat by contract.
[[nodiscard]] std::size_t value_offset(const std::string& body,
                                       const std::string& key) {
  const std::string quoted = "\"" + key + "\"";
  std::size_t pos = body.find(quoted);
  if (pos == std::string::npos) return std::string::npos;
  pos = body.find(':', pos + quoted.size());
  if (pos == std::string::npos) return std::string::npos;
  return pos + 1;
}

[[nodiscard]] bool parse_u64(const std::string& body, const std::string& key,
                             std::uint64_t& out) {
  const std::size_t pos = value_offset(body, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(body.c_str() + pos, &end, 10);
  if (end == body.c_str() + pos || errno == ERANGE) return false;
  out = value;
  return true;
}

/// Parses the flat float array after `key` into a tensor of `shape`.
/// Returns false on absent key, malformed array or length mismatch.
[[nodiscard]] bool parse_tensor(const std::string& body,
                                const std::string& key,
                                const std::vector<int>& shape, Tensor& out) {
  std::size_t pos = value_offset(body, key);
  if (pos == std::string::npos) return false;
  pos = body.find('[', pos);
  const std::size_t close = body.find(']', pos);
  if (pos == std::string::npos || close == std::string::npos) return false;

  Tensor parsed(shape);
  const char* cursor = body.c_str() + pos + 1;
  const char* limit = body.c_str() + close;
  for (std::size_t i = 0; i < parsed.numel(); ++i) {
    char* end = nullptr;
    const double value = std::strtod(cursor, &end);
    if (end == cursor || end > limit) return false;
    parsed[i] = static_cast<float>(value);
    cursor = end;
    while (cursor < limit && (*cursor == ',' || *cursor == ' ' ||
                              *cursor == '\n' || *cursor == '\t')) {
      ++cursor;
    }
  }
  // Trailing elements mean the array is longer than the shape.
  if (cursor < limit && *cursor != ']') return false;
  out = std::move(parsed);
  return true;
}

[[nodiscard]] Response json_error(int status, const std::string& message) {
  Response response;
  response.status = status;
  response.body = "{\"error\":\"" + message + "\"}";
  return response;
}

}  // namespace

Edge::Edge(serve::Router& router, EdgeConfig config)
    : router_(router),
      config_(std::move(config)),
      server_([this](const Request& request) { return handle(request); },
              config_.http) {}

Response Edge::handle(const Request& request) {
  if (request.target == "/healthz") {
    if (request.method != "GET") return json_error(405, "GET only");
    Response response;
    response.body = "{\"status\":\"ok\",\"shards\":" +
                    std::to_string(router_.shards()) + ",\"version\":" +
                    std::to_string(router_.snapshot_version()) + "}";
    return response;
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") return json_error(405, "GET only");
    Response response;
    response.body = obs::registry().to_json();
    return response;
  }
  if (request.target == "/classify") {
    if (request.method != "POST") return json_error(405, "POST only");
    DARNET_COUNTER_ADD("http/classify_requests_total", 1);
    return handle_classify(request);
  }
  return json_error(404, "no such route");
}

Response Edge::handle_classify(const Request& request) {
  engine::ClassifyRequest classify;
  if (!parse_u64(request.body, "session", classify.session_id)) {
    return json_error(400, "missing or malformed session");
  }
  (void)parse_u64(request.body, "tenant", classify.tenant_id);
  if (!parse_tensor(request.body, "frame", config_.frame_shape,
                    classify.frame)) {
    return json_error(400, "frame must be a flat array matching the "
                           "configured shape");
  }
  classify.imu_window = Tensor(config_.imu_shape);
  if (value_offset(request.body, "imu") != std::string::npos &&
      !parse_tensor(request.body, "imu", config_.imu_shape,
                    classify.imu_window)) {
    return json_error(400, "imu must be a flat array matching the "
                           "configured shape");
  }
  if (config_.deadline_us > 0) {
    classify.deadline = router_.clock_now() +
                        std::chrono::microseconds(config_.deadline_us);
  }

  const std::uint64_t session = classify.session_id;
  serve::Server::Submission submission =
      router_.submit(std::move(classify));
  serve::Response served = submission.response.get();

  if (served.status != serve::Status::kOk) {
    Response response;
    // Quota/backpressure rejections are the client's pacing problem
    // (429); shed and timeout are server-side load (503).
    response.status =
        served.status == serve::Status::kRejected ? 429 : 503;
    response.body = std::string("{\"session\":") + std::to_string(session) +
                    ",\"status\":\"" +
                    serve::status_name(served.status) + "\"}";
    return response;
  }

  const engine::StreamingVerdict& verdict = served.result.verdict;
  char confidence[32];
  std::snprintf(confidence, sizeof(confidence), "%.6f",
                static_cast<double>(
                    verdict.distribution.at(0, verdict.predicted)));
  Response response;
  response.body =
      "{\"session\":" + std::to_string(session) +
      ",\"status\":\"ok\",\"class\":" + std::to_string(verdict.predicted) +
      ",\"confidence\":" + confidence +
      std::string(",\"alert\":") + (verdict.alert ? "true" : "false") +
      ",\"degraded\":" + (served.result.degraded ? "true" : "false") +
      ",\"latency_us\":" + std::to_string(served.result.latency_us) +
      ",\"version\":" + std::to_string(router_.snapshot_version()) + "}";
  return response;
}

}  // namespace darnet::http
