#include "engine/engine.hpp"

#include <optional>
#include <stdexcept>

#include "obs/obs.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"
#include "util/stopwatch.hpp"

namespace darnet::engine {

namespace {

// Fallback scratch arena for direct classify_batch callers: installed only
// when the calling thread has no ArenaScope of its own (a serve worker's
// scope wins). Thread-local, so concurrent callers never share free lists.
// Intermediate activations cycle through it after one warm-up call; the
// returned tensor's block follows the caller's scope (or the heap) -- see
// DESIGN.md "Kernel architecture" for the zero-alloc contract.
class FallbackArenaScope {
 public:
  FallbackArenaScope() {
    static thread_local tensor::Arena t_engine_arena;
    if (tensor::current_arena() == nullptr) scope_.emplace(t_engine_arena);
  }

  FallbackArenaScope(const FallbackArenaScope&) = delete;
  FallbackArenaScope& operator=(const FallbackArenaScope&) = delete;

 private:
  std::optional<tensor::ArenaScope> scope_;
};

void record_arena_gauge() {
  if (const tensor::Arena* a = tensor::current_arena()) {
    DARNET_GAUGE_SET("engine/arena_bytes", a->bytes_cached());
  }
}

}  // namespace

NeuralClassifier::NeuralClassifier(std::shared_ptr<nn::Layer> model,
                                   int num_classes, std::string label)
    : model_(std::move(model)), classes_(num_classes),
      label_(std::move(label)) {
  if (!model_) {
    throw std::invalid_argument("NeuralClassifier: null model");
  }
  if (num_classes < 2) {
    throw std::invalid_argument("NeuralClassifier: need >= 2 classes");
  }
}

Tensor NeuralClassifier::probabilities(const Tensor& inputs) {
  Tensor p = nn::predict_proba(*model_, inputs);
  if (p.dim(1) != classes_) {
    throw std::logic_error("NeuralClassifier: model emits " +
                           std::to_string(p.dim(1)) + " classes, expected " +
                           std::to_string(classes_));
  }
  return p;
}

SvmClassifier::SvmClassifier(std::shared_ptr<svm::LinearSvm> model)
    : model_(std::move(model)) {
  if (!model_) {
    throw std::invalid_argument("SvmClassifier: null model");
  }
}

Tensor SvmClassifier::probabilities(const Tensor& inputs) {
  // The SVM consumes flattened windows; accept [N, T, C] and flatten.
  if (inputs.rank() == 3) {
    return model_->probabilities(
        inputs.reshaped({inputs.dim(0), inputs.dim(1) * inputs.dim(2)}));
  }
  return model_->probabilities(inputs);
}

const char* architecture_name(ArchitectureKind kind) noexcept {
  switch (kind) {
    case ArchitectureKind::kCnnOnly:
      return "CNN";
    case ArchitectureKind::kCnnSvm:
      return "CNN+SVM";
    case ArchitectureKind::kCnnRnn:
      return "CNN+RNN";
  }
  return "?";
}

EnsembleClassifier::EnsembleClassifier(
    std::shared_ptr<ProbabilisticClassifier> frame_model,
    std::shared_ptr<ProbabilisticClassifier> imu_model,
    bayes::ClassMap class_map)
    : frame_model_(std::move(frame_model)),
      imu_model_(std::move(imu_model)),
      combiner_(std::move(class_map)) {
  if (!frame_model_) {
    throw std::invalid_argument("EnsembleClassifier: null frame model");
  }
  if (frame_model_->num_classes() != combiner_.class_map().image_classes()) {
    throw std::invalid_argument(
        "EnsembleClassifier: frame model / class map mismatch");
  }
  if (imu_model_ &&
      imu_model_->num_classes() != combiner_.class_map().imu_classes()) {
    throw std::invalid_argument(
        "EnsembleClassifier: IMU model / class map mismatch");
  }
}

void EnsembleClassifier::restore_combiner(bayes::BayesianCombiner combiner) {
  if (combiner.class_map().image_classes() !=
          combiner_.class_map().image_classes() ||
      combiner.class_map().imu_classes() !=
          combiner_.class_map().imu_classes()) {
    throw std::invalid_argument(
        "EnsembleClassifier::restore_combiner: class map mismatch");
  }
  combiner_ = std::move(combiner);
}

void EnsembleClassifier::fit(const Tensor& frames, const Tensor& imu_windows,
                             std::span<const int> labels) {
  if (!imu_model_) return;
  const Tensor p_img = frame_model_->probabilities(frames);
  const Tensor p_imu = imu_model_->probabilities(imu_windows);
  combiner_.fit(p_img, p_imu, labels);
}

Tensor EnsembleClassifier::classify_batch(const Tensor& frames,
                                          const Tensor& imu_windows) {
  DARNET_TIMER("engine/classify_ns");
  DARNET_COUNTER_ADD("engine/classifications_total", 1);
  FallbackArenaScope arena_scope;
  Tensor p_img;
  {
    DARNET_SPAN("engine/frame_model_forward");
    p_img = frame_model_->probabilities(frames);
  }
  record_arena_gauge();
  if (!imu_model_) return p_img;
  Tensor p_imu;
  {
    DARNET_SPAN("engine/imu_model_forward");
    p_imu = imu_model_->probabilities(imu_windows);
  }
  DARNET_SPAN("engine/combine");
  return combiner_.combine(p_img, p_imu);
}

Tensor EnsembleClassifier::classify_batch_degraded(const Tensor& frames,
                                                   const Tensor& imu_windows) {
  if (!can_degrade()) return classify_batch(frames, imu_windows);
  DARNET_TIMER("engine/classify_ns");
  DARNET_COUNTER_ADD("engine/classifications_total", 1);
  DARNET_COUNTER_ADD("engine/degraded_classifications_total", 1);
  FallbackArenaScope arena_scope;
  Tensor p_imu;
  {
    DARNET_SPAN("engine/imu_model_forward");
    p_imu = imu_model_->probabilities(imu_windows);
  }
  // Uniform frame prior: only the IMU evidence moves the posterior. The
  // heavy frame model never runs.
  const int n = p_imu.dim(0);
  const int c_img = combiner_.class_map().image_classes();
  const Tensor uniform =
      Tensor::full({n, c_img}, 1.0f / static_cast<float>(c_img));
  DARNET_SPAN("engine/combine");
  return combiner_.combine(uniform, p_imu);
}

ClassifyResult EnsembleClassifier::classify(const ClassifyRequest& request,
                                            SessionState& session,
                                            const StreamingConfig& config) {
  util::Stopwatch watch;
  Tensor fused = classify_batch(request.frame, request.imu_window);
  if (fused.dim(0) != 1) {
    throw std::invalid_argument(
        "EnsembleClassifier::classify: one sample per request");
  }
  ClassifyResult result;
  result.verdict = advance(session, fused, config);
  result.latency_us = static_cast<std::int64_t>(watch.seconds() * 1e6);
  result.degraded = false;
  return result;
}

std::vector<int> EnsembleClassifier::predict(const Tensor& frames,
                                             const Tensor& imu_windows) {
  const Tensor fused = classify_batch(frames, imu_windows);
  const int n = fused.dim(0), c = fused.dim(1);
  std::vector<int> preds(n);
  for (int i = 0; i < n; ++i) {
    preds[i] = tensor::argmax(std::span<const float>(
        fused.data() + static_cast<std::size_t>(i) * c,
        static_cast<std::size_t>(c)));
  }
  return preds;
}

nn::ConfusionMatrix EnsembleClassifier::evaluate(
    const Tensor& frames, const Tensor& imu_windows,
    std::span<const int> labels, std::vector<std::string> names) {
  const auto preds = predict(frames, imu_windows);
  if (preds.size() != labels.size()) {
    throw std::invalid_argument("EnsembleClassifier::evaluate: size mismatch");
  }
  nn::ConfusionMatrix cm(frame_model_->num_classes(), std::move(names));
  for (std::size_t i = 0; i < preds.size(); ++i) cm.add(labels[i], preds[i]);
  return cm;
}

void AnalyticsEngine::register_stream(
    const std::string& stream,
    std::shared_ptr<ProbabilisticClassifier> model) {
  if (stream.empty()) {
    throw std::invalid_argument("AnalyticsEngine: empty stream name");
  }
  if (!model) {
    throw std::invalid_argument("AnalyticsEngine: null model for " + stream);
  }
  if (models_.contains(stream)) {
    throw std::invalid_argument(
        "AnalyticsEngine: stream already registered (1-to-1 mapping): " +
        stream);
  }
  models_[stream] = std::move(model);
}

bool AnalyticsEngine::has_stream(const std::string& stream) const {
  return models_.contains(stream);
}

ProbabilisticClassifier& AnalyticsEngine::model_for(
    const std::string& stream) {
  const auto it = models_.find(stream);
  if (it == models_.end()) {
    throw std::out_of_range("AnalyticsEngine: unknown stream " + stream);
  }
  return *it->second;
}

std::vector<std::string> AnalyticsEngine::streams() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, _] : models_) names.push_back(name);
  return names;
}

}  // namespace darnet::engine
