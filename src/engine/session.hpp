// Per-driver session state: the temporal smoothing + debounced alerting
// recurrence, extracted into a copyable value type.
//
// Historically this state lived twice -- inside `StreamingClassifier`
// (online) and re-implemented inside `smooth_timeline` (offline). The
// serving tier (src/serve) needs the same recurrence a third time, per
// concurrent driver session, so the single implementation now lives here:
// `SessionState` is a plain value and `advance` applies one fused
// distribution to it. `StreamingClassifier`, `smooth_timeline` and the
// serve scheduler are all thin wrappers over this function, which is what
// makes the batched server's verdict stream bit-identical to the
// single-threaded reference (see tests/test_serve.cpp).
//
// This header deliberately depends only on the tensor layer so that both
// engine/engine.hpp (request/result types) and engine/streaming.hpp can
// include it without a cycle.
#pragma once

#include <optional>

#include "tensor/tensor.hpp"

namespace darnet::engine {

using tensor::Tensor;

struct StreamingConfig {
  /// EWMA weight of the newest fused distribution (1.0 = no smoothing).
  double smoothing_alpha = 0.6;
  /// Consecutive distracted steps before an alert fires.
  int alert_streak = 2;
  /// The class index treated as "not distracted".
  int normal_class = 0;
};

/// Throws std::invalid_argument unless alpha is in (0, 1] and
/// alert_streak >= 1. `who` prefixes the diagnostic.
void validate(const StreamingConfig& config, const char* who);

struct StreamingVerdict {
  int predicted{0};
  Tensor distribution;    // smoothed, [1, C]
  bool alert{false};      // a debounced distraction alert fired this step
  bool alert_onset{false};  // first step of a new alert episode
};

/// The temporal state of one driver session. Copyable and movable: the
/// serve tier keeps one per session id, StreamingClassifier keeps one per
/// instance, smooth_timeline keeps one per call.
struct SessionState {
  /// EWMA-smoothed fused distribution ([1, C]); empty before step one.
  std::optional<Tensor> smoothed;
  /// Consecutive steps whose smoothed argmax was not `normal_class`.
  int streak{0};
  /// Total steps advanced (monotonic; survives reset_temporal).
  int steps{0};
  /// Total debounced alert episodes begun (monotonic).
  int alerts{0};

  /// Drop the temporal recurrence (new trip, same session object); the
  /// monotonic steps/alerts counters are preserved.
  void reset_temporal() {
    smoothed.reset();
    streak = 0;
  }
};

/// Apply one fused per-step distribution (`fused`, shape [1, C]) to the
/// session: EWMA-smooth, argmax, update the debounce streak, and count.
/// Bitwise-identical to the historical StreamingClassifier::step /
/// smooth_timeline arithmetic. The config is NOT validated here (callers
/// validate once up front with `validate`).
StreamingVerdict advance(SessionState& state, const Tensor& fused,
                         const StreamingConfig& config);

}  // namespace darnet::engine
