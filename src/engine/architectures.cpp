#include "engine/architectures.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/inception.hpp"
#include "nn/lstm.hpp"
#include "nn/pool.hpp"

namespace darnet::engine {

nn::Sequential build_frame_cnn(const FrameCnnConfig& config) {
  if (config.input_size % 8 != 0 || config.input_size < 16) {
    throw std::invalid_argument(
        "build_frame_cnn: input size must be >= 16 and divisible by 8");
  }
  util::Rng rng(config.seed);
  const int stem = config.stem_channels;

  nn::Sequential model;
  model.emplace<nn::Conv2D>(1, stem, 3, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2D>(2);
  // Inception block 1: 4+6+4+2 = 16 channels.
  model.add(nn::make_micro_inception(stem, 4, 6, 4, 2, rng));
  model.emplace<nn::MaxPool2D>(2);
  // Inception block 2: 8+12+8+4 = 32 channels.
  model.add(nn::make_micro_inception(16, 8, 12, 8, 4, rng));
  model.emplace<nn::MaxPool2D>(2);
  // Spatially-aware head: driver pose is positional, so the classifier
  // keeps the (size/8)^2 grid rather than global-average-pooling it away.
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dropout>(config.dropout, config.seed ^ 0x9e3779b9ULL);
  const int grid = config.input_size / 8;
  model.emplace<nn::Dense>(32 * grid * grid, config.num_classes, rng);
  return model;
}

nn::Sequential build_imu_rnn(const ImuRnnConfig& config) {
  if (config.layers < 1 || config.hidden < 1) {
    throw std::invalid_argument("build_imu_rnn: invalid configuration");
  }
  util::Rng rng(config.seed);
  nn::Sequential model;
  int in = config.channels;
  for (int layer = 0; layer < config.layers; ++layer) {
    model.emplace<nn::BiLstm>(in, config.hidden, rng);
    in = 2 * config.hidden;
  }
  model.emplace<nn::TemporalMeanPool>();
  model.emplace<nn::Dense>(in, config.num_classes, rng);
  return model;
}

}  // namespace darnet::engine
