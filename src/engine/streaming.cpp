#include "engine/streaming.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "tensor/ops.hpp"

namespace darnet::engine {

std::vector<StreamingVerdict> smooth_timeline(
    const std::vector<Tensor>& distributions,
    const StreamingConfig& config) {
  if (config.smoothing_alpha <= 0.0 || config.smoothing_alpha > 1.0 ||
      config.alert_streak < 1) {
    throw std::invalid_argument("smooth_timeline: invalid config");
  }
  DARNET_SPAN("engine/smooth_timeline");
  std::vector<StreamingVerdict> out;
  out.reserve(distributions.size());
  std::optional<Tensor> smoothed;
  int streak = 0;
  for (const auto& dist : distributions) {
    if (dist.rank() != 2 || dist.dim(0) != 1) {
      throw std::invalid_argument("smooth_timeline: [1, C] rows required");
    }
    if (!smoothed) {
      smoothed = dist;
    } else {
      const auto alpha = static_cast<float>(config.smoothing_alpha);
      for (std::size_t i = 0; i < dist.numel(); ++i) {
        (*smoothed)[i] = (1.0f - alpha) * (*smoothed)[i] + alpha * dist[i];
      }
    }
    StreamingVerdict v;
    v.distribution = *smoothed;
    v.predicted = tensor::argmax(
        std::span<const float>(smoothed->data(), smoothed->numel()));
    streak = (v.predicted != config.normal_class) ? streak + 1 : 0;
    v.alert = streak >= config.alert_streak;
    v.alert_onset = streak == config.alert_streak;
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<std::vector<StreamingVerdict>> smooth_timelines(
    const std::vector<std::vector<Tensor>>& driver_timelines,
    const StreamingConfig& config) {
  if (config.smoothing_alpha <= 0.0 || config.smoothing_alpha > 1.0 ||
      config.alert_streak < 1) {
    throw std::invalid_argument("smooth_timelines: invalid config");
  }
  std::vector<std::vector<StreamingVerdict>> out(driver_timelines.size());
  parallel::parallel_for(
      0, static_cast<std::int64_t>(driver_timelines.size()), /*grain=*/1,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          out[static_cast<std::size_t>(i)] = smooth_timeline(
              driver_timelines[static_cast<std::size_t>(i)], config);
        }
      });
  return out;
}

StreamingClassifier::StreamingClassifier(EnsembleClassifier& ensemble,
                                         StreamingConfig config)
    : ensemble_(&ensemble), config_(config) {
  if (config.smoothing_alpha <= 0.0 || config.smoothing_alpha > 1.0) {
    throw std::invalid_argument(
        "StreamingClassifier: alpha must be in (0, 1]");
  }
  if (config.alert_streak < 1) {
    throw std::invalid_argument(
        "StreamingClassifier: alert_streak must be >= 1");
  }
}

void StreamingClassifier::reset() {
  smoothed_.reset();
  streak_ = 0;
}

StreamingVerdict StreamingClassifier::step(const Tensor& frame,
                                           const Tensor& imu_window) {
  Tensor fused = ensemble_->classify(frame, imu_window);
  if (fused.dim(0) != 1) {
    throw std::invalid_argument(
        "StreamingClassifier::step: one sample per step");
  }

  if (!smoothed_) {
    smoothed_ = fused;
  } else {
    const auto alpha = static_cast<float>(config_.smoothing_alpha);
    float* s = smoothed_->data();
    const float* f = fused.data();
    for (std::size_t i = 0; i < fused.numel(); ++i) {
      s[i] = (1.0f - alpha) * s[i] + alpha * f[i];
    }
  }

  StreamingVerdict verdict;
  verdict.distribution = *smoothed_;
  verdict.predicted = tensor::argmax(std::span<const float>(
      smoothed_->data(), smoothed_->numel()));

  if (verdict.predicted != config_.normal_class) {
    ++streak_;
  } else {
    streak_ = 0;
  }
  verdict.alert = streak_ >= config_.alert_streak;
  verdict.alert_onset = streak_ == config_.alert_streak;
  if (verdict.alert_onset) ++alerts_;
  ++steps_;
  return verdict;
}

}  // namespace darnet::engine
