#include "engine/streaming.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "parallel/pool.hpp"

namespace darnet::engine {

std::vector<StreamingVerdict> smooth_timeline(
    const std::vector<Tensor>& distributions,
    const StreamingConfig& config) {
  validate(config, "smooth_timeline");
  DARNET_SPAN("engine/smooth_timeline");
  std::vector<StreamingVerdict> out;
  out.reserve(distributions.size());
  SessionState state;
  for (const auto& dist : distributions) {
    out.push_back(advance(state, dist, config));
  }
  return out;
}

std::vector<std::vector<StreamingVerdict>> smooth_timelines(
    const std::vector<std::vector<Tensor>>& driver_timelines,
    const StreamingConfig& config) {
  validate(config, "smooth_timelines");
  std::vector<std::vector<StreamingVerdict>> out(driver_timelines.size());
  parallel::parallel_for(
      0, static_cast<std::int64_t>(driver_timelines.size()), /*grain=*/1,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          out[static_cast<std::size_t>(i)] = smooth_timeline(
              driver_timelines[static_cast<std::size_t>(i)], config);
        }
      });
  return out;
}

StreamingClassifier::StreamingClassifier(
    std::shared_ptr<EnsembleClassifier> ensemble, StreamingConfig config)
    : ensemble_(std::move(ensemble)), config_(config) {
  if (!ensemble_) {
    throw std::invalid_argument("StreamingClassifier: null ensemble");
  }
  validate(config, "StreamingClassifier");
}

StreamingVerdict StreamingClassifier::step(const Tensor& frame,
                                           const Tensor& imu_window) {
  Tensor fused = ensemble_->classify_batch(frame, imu_window);
  if (fused.dim(0) != 1) {
    throw std::invalid_argument(
        "StreamingClassifier::step: one sample per step");
  }
  return advance(state_, fused, config_);
}

}  // namespace darnet::engine
