// Analytics engine (Section 3.3): modular 1-to-1 mapping between device
// data streams and machine-learning models, with ensemble combination of
// the per-modality outputs into one classification.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "bayes/combiner.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "svm/svm.hpp"

namespace darnet::engine {

using tensor::Tensor;

/// Uniform inference interface over heterogeneous per-modality models
/// (neural networks and the SVM baseline).
class ProbabilisticClassifier {
 public:
  virtual ~ProbabilisticClassifier() = default;

  /// Class distribution [N, C] for a batch of modality inputs.
  [[nodiscard]] virtual Tensor probabilities(const Tensor& inputs) = 0;
  [[nodiscard]] virtual int num_classes() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Adapts any nn::Layer whose output is [N, C] logits.
class NeuralClassifier final : public ProbabilisticClassifier {
 public:
  NeuralClassifier(nn::Layer& model, int num_classes, std::string label);

  [[nodiscard]] Tensor probabilities(const Tensor& inputs) override;
  [[nodiscard]] int num_classes() const override { return classes_; }
  [[nodiscard]] std::string describe() const override { return label_; }

 private:
  nn::Layer* model_;
  int classes_;
  std::string label_;
};

/// Adapts the linear SVM baseline (softmax over margins).
class SvmClassifier final : public ProbabilisticClassifier {
 public:
  explicit SvmClassifier(svm::LinearSvm& model);

  [[nodiscard]] Tensor probabilities(const Tensor& inputs) override;
  [[nodiscard]] int num_classes() const override {
    return model_->num_classes();
  }
  [[nodiscard]] std::string describe() const override { return "SVM"; }

 private:
  svm::LinearSvm* model_;
};

/// The three evaluation architectures of Table 2.
enum class ArchitectureKind { kCnnOnly, kCnnSvm, kCnnRnn };
[[nodiscard]] const char* architecture_name(ArchitectureKind kind) noexcept;

/// Frame model + optional IMU model fused by the Bayesian-network
/// combiner. With no IMU model this degrades to the CNN-only baseline.
class EnsembleClassifier {
 public:
  /// `imu_model` may be null (CNN-only architecture). Models are borrowed
  /// and must outlive the ensemble.
  EnsembleClassifier(ProbabilisticClassifier& frame_model,
                     ProbabilisticClassifier* imu_model,
                     bayes::ClassMap class_map);

  /// Fit the combiner CPTs on training-set outputs. No-op for CNN-only.
  void fit(const Tensor& frames, const Tensor& imu_windows,
           std::span<const int> labels);

  /// Fused distribution over image classes [N, C].
  [[nodiscard]] Tensor classify(const Tensor& frames,
                                const Tensor& imu_windows);

  [[nodiscard]] std::vector<int> predict(const Tensor& frames,
                                         const Tensor& imu_windows);

  [[nodiscard]] nn::ConfusionMatrix evaluate(
      const Tensor& frames, const Tensor& imu_windows,
      std::span<const int> labels, std::vector<std::string> names = {});

  [[nodiscard]] bool has_imu_model() const noexcept {
    return imu_model_ != nullptr;
  }
  [[nodiscard]] const bayes::BayesianCombiner& combiner() const noexcept {
    return combiner_;
  }

  /// Replace the combiner with a previously-fitted one (checkpoint
  /// restore). Its class map must match this ensemble's.
  void restore_combiner(bayes::BayesianCombiner combiner);

 private:
  ProbabilisticClassifier* frame_model_;
  ProbabilisticClassifier* imu_model_;
  bayes::BayesianCombiner combiner_;
};

/// Stream-name -> model registry: the engine "maintains a 1-to-1
/// relationship between device data-streams and machine learning models"
/// so new devices can be added without retraining existing models.
class AnalyticsEngine {
 public:
  void register_stream(const std::string& stream,
                       ProbabilisticClassifier& model);

  [[nodiscard]] bool has_stream(const std::string& stream) const;
  [[nodiscard]] ProbabilisticClassifier& model_for(const std::string& stream);
  [[nodiscard]] std::vector<std::string> streams() const;

 private:
  std::map<std::string, ProbabilisticClassifier*> models_;
};

}  // namespace darnet::engine
