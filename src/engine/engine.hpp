// Analytics engine (Section 3.3): modular 1-to-1 mapping between device
// data streams and machine-learning models, with ensemble combination of
// the per-modality outputs into one classification.
//
// API shape (PR 4 redesign, shims removed in PR 9):
//   * Ownership is explicit. The classifier adapters and the ensemble hold
//     `std::shared_ptr`s to their models; callers that keep owning the
//     model elsewhere pass a non-owning handle via `engine::borrow`. The
//     historical reference/raw-pointer shim constructors are gone; the
//     gate token that used to enable them is banned tree-wide by
//     darnet_lint (engine-deprecated-shim).
//   * Requests and results are value types. `ClassifyRequest` carries a
//     session id, a tenant id (the multi-tenant admission key the router
//     meters quotas on), a deadline and the two modality tensors;
//     `ClassifyResult` carries the smoothed per-session verdict, measured
//     latency and whether the degraded path served it.
//   * Batched entry points (`classify_batch`, `classify_batch_degraded`)
//     are the primitives the serving tier (src/serve) coalesces
//     micro-batches onto.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "bayes/combiner.hpp"
#include "engine/session.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "svm/svm.hpp"

namespace darnet::engine {

using tensor::Tensor;

/// Non-owning shared handle to a caller-owned object (aliasing
/// constructor: no allocation, no deleter). The caller guarantees the
/// object outlives every copy of the returned handle -- exactly the
/// contract the old reference-taking constructors had, now spelled out in
/// the type.
template <typename T>
[[nodiscard]] std::shared_ptr<T> borrow(T& object) noexcept {
  return std::shared_ptr<T>(std::shared_ptr<void>(), &object);
}

/// Uniform inference interface over heterogeneous per-modality models
/// (neural networks and the SVM baseline).
class ProbabilisticClassifier {
 public:
  virtual ~ProbabilisticClassifier() = default;

  /// Class distribution [N, C] for a batch of modality inputs.
  [[nodiscard]] virtual Tensor probabilities(const Tensor& inputs) = 0;
  [[nodiscard]] virtual int num_classes() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Adapts any nn::Layer whose output is [N, C] logits.
class NeuralClassifier final : public ProbabilisticClassifier {
 public:
  /// Shares ownership of the model (pass engine::borrow(model) to keep
  /// the old caller-owned lifetime).
  NeuralClassifier(std::shared_ptr<nn::Layer> model, int num_classes,
                   std::string label);

  [[nodiscard]] Tensor probabilities(const Tensor& inputs) override;
  [[nodiscard]] int num_classes() const override { return classes_; }
  [[nodiscard]] std::string describe() const override { return label_; }

 private:
  std::shared_ptr<nn::Layer> model_;
  int classes_;
  std::string label_;
};

/// Adapts the linear SVM baseline (softmax over margins).
class SvmClassifier final : public ProbabilisticClassifier {
 public:
  explicit SvmClassifier(std::shared_ptr<svm::LinearSvm> model);

  [[nodiscard]] Tensor probabilities(const Tensor& inputs) override;
  [[nodiscard]] int num_classes() const override {
    return model_->num_classes();
  }
  [[nodiscard]] std::string describe() const override { return "SVM"; }

 private:
  std::shared_ptr<svm::LinearSvm> model_;
};

/// The three evaluation architectures of Table 2.
enum class ArchitectureKind { kCnnOnly, kCnnSvm, kCnnRnn };
[[nodiscard]] const char* architecture_name(ArchitectureKind kind) noexcept;

/// One single-frame inference request against the engine, as admitted by
/// the serving tier: which driver session it belongs to, when the answer
/// stops being useful, and the two modality tensors ([1, ...] each).
struct ClassifyRequest {
  /// Stable per-driver session identifier (smoothing state key; also the
  /// consistent-hash routing key in the sharded tier -- serve::Router).
  std::uint64_t session_id{0};
  /// Admission-control tenant (fleet operator / API customer). The router
  /// meters per-tenant quotas on it; 0 is the anonymous default tenant.
  std::uint64_t tenant_id{0};
  /// Absolute steady-clock deadline; requests still queued past it are
  /// completed with a timeout verdict instead of being served.
  std::chrono::steady_clock::time_point deadline{
      std::chrono::steady_clock::time_point::max()};
  /// Camera frame, [1, 1, H, W] (or any [1, ...] the frame model takes).
  Tensor frame;
  /// IMU window, [1, T, C] (ignored by CNN-only ensembles).
  Tensor imu_window;
};

/// The engine's answer to one ClassifyRequest.
struct ClassifyResult {
  /// Smoothed, debounced per-session verdict (distribution is [1, C]).
  StreamingVerdict verdict;
  /// Wall time spent producing this result, microseconds.
  std::int64_t latency_us{0};
  /// True when the degraded single-modality path served the request.
  bool degraded{false};
};

/// Frame model + optional IMU model fused by the Bayesian-network
/// combiner. With no IMU model this degrades to the CNN-only baseline.
class EnsembleClassifier {
 public:
  /// Owning constructor. `imu_model` may be null (CNN-only architecture).
  EnsembleClassifier(std::shared_ptr<ProbabilisticClassifier> frame_model,
                     std::shared_ptr<ProbabilisticClassifier> imu_model,
                     bayes::ClassMap class_map);

  /// Fit the combiner CPTs on training-set outputs. No-op for CNN-only.
  void fit(const Tensor& frames, const Tensor& imu_windows,
           std::span<const int> labels);

  /// Fused distribution over image classes [B, C] -- the batched entry
  /// point the serving tier coalesces micro-batches onto.
  [[nodiscard]] Tensor classify_batch(const Tensor& frames,
                                      const Tensor& imu_windows);

  /// Degraded single-modality pass [B, C]: runs only the cheap IMU model
  /// and maps its evidence onto image classes through the fitted combiner
  /// under a uniform frame prior (the heavy frame CNN is skipped). Falls
  /// back to the full pass when there is no (fitted) IMU side to lean on.
  [[nodiscard]] Tensor classify_batch_degraded(const Tensor& frames,
                                               const Tensor& imu_windows);

  /// True when classify_batch_degraded has a cheaper path to take.
  [[nodiscard]] bool can_degrade() const noexcept {
    return imu_model_ != nullptr && combiner_.trained();
  }

  /// Request/result surface: serve one request, advancing the caller's
  /// session state (EWMA + debounce) with the fused distribution.
  [[nodiscard]] ClassifyResult classify(const ClassifyRequest& request,
                                        SessionState& session,
                                        const StreamingConfig& config);

  [[nodiscard]] std::vector<int> predict(const Tensor& frames,
                                         const Tensor& imu_windows);

  [[nodiscard]] nn::ConfusionMatrix evaluate(
      const Tensor& frames, const Tensor& imu_windows,
      std::span<const int> labels, std::vector<std::string> names = {});

  [[nodiscard]] bool has_imu_model() const noexcept {
    return imu_model_ != nullptr;
  }
  [[nodiscard]] const bayes::BayesianCombiner& combiner() const noexcept {
    return combiner_;
  }

  /// Replace the combiner with a previously-fitted one (checkpoint
  /// restore). Its class map must match this ensemble's.
  void restore_combiner(bayes::BayesianCombiner combiner);

 private:
  std::shared_ptr<ProbabilisticClassifier> frame_model_;
  std::shared_ptr<ProbabilisticClassifier> imu_model_;
  bayes::BayesianCombiner combiner_;
};

/// Stream-name -> model registry: the engine "maintains a 1-to-1
/// relationship between device data-streams and machine learning models"
/// so new devices can be added without retraining existing models.
class AnalyticsEngine {
 public:
  /// Shares ownership of the model.
  void register_stream(const std::string& stream,
                       std::shared_ptr<ProbabilisticClassifier> model);

  [[nodiscard]] bool has_stream(const std::string& stream) const;
  [[nodiscard]] ProbabilisticClassifier& model_for(const std::string& stream);
  [[nodiscard]] std::vector<std::string> streams() const;

 private:
  std::map<std::string, std::shared_ptr<ProbabilisticClassifier>> models_;
};

}  // namespace darnet::engine
