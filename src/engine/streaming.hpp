// Stateful streaming classification on top of the ensemble.
//
// The paper: "Our system is designed to make classifications at each
// time-step from the data, making it amenable to near real-time
// detection." Raw per-timestep verdicts flicker at behaviour boundaries
// and under sensor noise; deployments therefore (a) smooth the fused
// distribution over time with an exponential moving average and
// (b) debounce alerts so a distraction must persist before one fires.
#pragma once

#include <optional>
#include <vector>

#include "engine/engine.hpp"

namespace darnet::engine {

struct StreamingConfig {
  /// EWMA weight of the newest fused distribution (1.0 = no smoothing).
  double smoothing_alpha = 0.6;
  /// Consecutive distracted steps before an alert fires.
  int alert_streak = 2;
  /// The class index treated as "not distracted".
  int normal_class = 0;
};

struct StreamingVerdict {
  int predicted{0};
  Tensor distribution;    // smoothed, [1, C]
  bool alert{false};      // a debounced distraction alert fired this step
  bool alert_onset{false};  // first step of a new alert episode
};

/// Re-run smoothing + debouncing over an already-collected sequence of
/// per-step fused distributions (each [1, C]) -- the offline counterpart
/// of StreamingClassifier for post-hoc analysis of a recorded session.
[[nodiscard]] std::vector<StreamingVerdict> smooth_timeline(
    const std::vector<Tensor>& distributions, const StreamingConfig& config);

/// Fleet-scale counterpart of smooth_timeline: one recorded timeline per
/// driver. The EWMA recurrence is inherently sequential *within* a
/// timeline, but drivers are independent, so timelines are sharded across
/// the parallel::ThreadPool. Output order matches the input order and each
/// per-driver result is identical to a smooth_timeline call on it.
[[nodiscard]] std::vector<std::vector<StreamingVerdict>> smooth_timelines(
    const std::vector<std::vector<Tensor>>& driver_timelines,
    const StreamingConfig& config);

/// Feeds per-timestep modality inputs through an EnsembleClassifier and
/// maintains the temporal state (smoothed distribution, alert streak).
class StreamingClassifier {
 public:
  StreamingClassifier(EnsembleClassifier& ensemble, StreamingConfig config);

  /// One time-step: a single frame [1, 1, H, W] and IMU window
  /// [1, T, C]. Returns the smoothed verdict.
  StreamingVerdict step(const Tensor& frame, const Tensor& imu_window);

  /// Drop temporal state (new session).
  void reset();

  [[nodiscard]] int steps_processed() const noexcept { return steps_; }
  [[nodiscard]] int alerts_fired() const noexcept { return alerts_; }
  [[nodiscard]] const StreamingConfig& config() const noexcept {
    return config_;
  }

 private:
  EnsembleClassifier* ensemble_;
  StreamingConfig config_;
  std::optional<Tensor> smoothed_;
  int streak_{0};
  int steps_{0};
  int alerts_{0};
};

}  // namespace darnet::engine
