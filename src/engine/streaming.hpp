// Stateful streaming classification on top of the ensemble.
//
// The paper: "Our system is designed to make classifications at each
// time-step from the data, making it amenable to near real-time
// detection." Raw per-timestep verdicts flicker at behaviour boundaries
// and under sensor noise; deployments therefore (a) smooth the fused
// distribution over time with an exponential moving average and
// (b) debounce alerts so a distraction must persist before one fires.
//
// The recurrence itself (SessionState + advance) lives in
// engine/session.hpp so the streaming classifier, the offline
// smooth_timeline re-runner, and the serving tier (src/serve) all share
// one implementation. Everything here is a thin wrapper.
#pragma once

#include <vector>

#include "engine/engine.hpp"
#include "engine/session.hpp"

namespace darnet::engine {

/// Re-run smoothing + debouncing over an already-collected sequence of
/// per-step fused distributions (each [1, C]) -- the offline counterpart
/// of StreamingClassifier for post-hoc analysis of a recorded session.
[[nodiscard]] std::vector<StreamingVerdict> smooth_timeline(
    const std::vector<Tensor>& distributions, const StreamingConfig& config);

/// Fleet-scale counterpart of smooth_timeline: one recorded timeline per
/// driver. The EWMA recurrence is inherently sequential *within* a
/// timeline, but drivers are independent, so timelines are sharded across
/// the parallel::ThreadPool. Output order matches the input order and each
/// per-driver result is identical to a smooth_timeline call on it.
[[nodiscard]] std::vector<std::vector<StreamingVerdict>> smooth_timelines(
    const std::vector<std::vector<Tensor>>& driver_timelines,
    const StreamingConfig& config);

/// Feeds per-timestep modality inputs through an EnsembleClassifier and
/// maintains the temporal state (smoothed distribution, alert streak) in
/// a SessionState.
class StreamingClassifier {
 public:
  /// Owning constructor; pass engine::borrow(ensemble) to keep the old
  /// caller-owned lifetime.
  StreamingClassifier(std::shared_ptr<EnsembleClassifier> ensemble,
                      StreamingConfig config);

  /// Deprecated borrowing shim: `ensemble` must outlive the classifier.
  StreamingClassifier(EnsembleClassifier& ensemble, StreamingConfig config)
      : StreamingClassifier(borrow(ensemble), config) {}

  /// One time-step: a single frame [1, 1, H, W] and IMU window
  /// [1, T, C]. Returns the smoothed verdict.
  StreamingVerdict step(const Tensor& frame, const Tensor& imu_window);

  /// Drop temporal state (new session). The steps/alerts counters are
  /// monotonic and persist across resets.
  void reset() { state_.reset_temporal(); }

  [[nodiscard]] int steps_processed() const noexcept { return state_.steps; }
  [[nodiscard]] int alerts_fired() const noexcept { return state_.alerts; }
  [[nodiscard]] const StreamingConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const SessionState& state() const noexcept { return state_; }

 private:
  std::shared_ptr<EnsembleClassifier> ensemble_;
  StreamingConfig config_;
  SessionState state_;
};

}  // namespace darnet::engine
