#include "engine/session.hpp"

#include <stdexcept>
#include <string>

#include "tensor/ops.hpp"

namespace darnet::engine {

void validate(const StreamingConfig& config, const char* who) {
  if (config.smoothing_alpha <= 0.0 || config.smoothing_alpha > 1.0) {
    throw std::invalid_argument(std::string(who) +
                                ": smoothing_alpha must be in (0, 1]");
  }
  if (config.alert_streak < 1) {
    throw std::invalid_argument(std::string(who) +
                                ": alert_streak must be >= 1");
  }
}

StreamingVerdict advance(SessionState& state, const Tensor& fused,
                         const StreamingConfig& config) {
  if (fused.rank() != 2 || fused.dim(0) != 1) {
    throw std::invalid_argument("engine::advance: [1, C] rows required");
  }
  if (!state.smoothed) {
    state.smoothed = fused;
  } else {
    if (state.smoothed->numel() != fused.numel()) {
      throw std::invalid_argument(
          "engine::advance: class count changed mid-session");
    }
    const auto alpha = static_cast<float>(config.smoothing_alpha);
    float* s = state.smoothed->data();
    const float* f = fused.data();
    for (std::size_t i = 0; i < fused.numel(); ++i) {
      s[i] = (1.0f - alpha) * s[i] + alpha * f[i];
    }
  }

  StreamingVerdict verdict;
  verdict.distribution = *state.smoothed;
  verdict.predicted = tensor::argmax(std::span<const float>(
      state.smoothed->data(), state.smoothed->numel()));

  if (verdict.predicted != config.normal_class) {
    ++state.streak;
  } else {
    state.streak = 0;
  }
  verdict.alert = state.streak >= config.alert_streak;
  verdict.alert_onset = state.streak == config.alert_streak;
  if (verdict.alert_onset) ++state.alerts;
  ++state.steps;
  return verdict;
}

}  // namespace darnet::engine
