// Model factories for DarNet's two network architectures (Section 4.2).
#pragma once

#include "nn/sequential.hpp"

namespace darnet::engine {

struct FrameCnnConfig {
  int input_size = 48;   // square grayscale input edge
  int num_classes = 6;
  int stem_channels = 8;
  double dropout = 0.20;
  std::uint64_t seed = 11;
};

/// The frame model: a MicroInception CNN (DESIGN.md's stand-in for the
/// fine-tuned Inception-V3). Stem conv -> pool -> inception block -> pool
/// -> inception block -> global average pool -> dropout -> dense softmax
/// head. Input must be [N, 1, size, size] with size divisible by 4.
nn::Sequential build_frame_cnn(const FrameCnnConfig& config);

struct ImuRnnConfig {
  int channels = 13;   // accel + gyro + gravity + rotation quaternion
  int num_classes = 3; // normal / talking / texting
  int hidden = 32;     // per direction (paper: 64; scaled for 1-core CPU)
  int layers = 2;      // paper: "2 bidirectional LSTM cells"
  std::uint64_t seed = 13;
};

/// The IMU model: a deep bidirectional LSTM (stacked BiLstm layers, mean
/// pooled over time, dense softmax head). Input: [N, 20, channels].
nn::Sequential build_imu_rnn(const ImuRnnConfig& config);

}  // namespace darnet::engine
