#include "util/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace darnet::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must not be empty");
  }
}

Table& Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(row));
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (auto w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::csv() const {
  std::ostringstream out;
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(cells[i]);
    }
    out << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
  return out.str();
}

void Table::save_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(p);
  if (!out) throw std::runtime_error("Table::save_csv: cannot open " + path);
  out << csv();
  if (!out) throw std::runtime_error("Table::save_csv: write failed");
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace darnet::util
