// Minimal binary serialisation used for model checkpoints and wire-format
// messages in the collection framework.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace darnet::util {

/// Appends POD values / strings / float buffers to a growable byte buffer.
class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { append(&v, sizeof v); }
  void write_u32(std::uint32_t v) { append(&v, sizeof v); }
  void write_u64(std::uint64_t v) { append(&v, sizeof v); }
  void write_i64(std::int64_t v) { append(&v, sizeof v); }
  void write_f32(float v) { append(&v, sizeof v); }
  void write_f64(double v) { append(&v, sizeof v); }

  void write_string(const std::string& s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  void write_f32_span(std::span<const float> values) {
    write_u64(values.size());
    append(values.data(), values.size() * sizeof(float));
  }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    append(bytes.data(), bytes.size());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buffer_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  void append(const void* src, std::size_t n) {
    // resize + memcpy instead of vector::insert: identical behaviour, but
    // GCC 12's -Wstringop-overflow mis-fires on small inlined inserts.
    if (n == 0) return;
    const std::size_t old = buffer_.size();
    buffer_.resize(old + n);
    std::memcpy(buffer_.data() + old, src, n);
  }

  std::vector<std::uint8_t> buffer_;
};

/// Reads values back in the order they were written. Throws
/// std::out_of_range on truncated input -- a truncated checkpoint or wire
/// message is a hard error, never silently tolerated.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const auto n = read_u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<float> read_f32_vector() {
    const auto n = read_u64();
    require(n * sizeof(float));
    std::vector<float> out(n);
    std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return out;
  }

  /// Raw f32 payload into caller storage (no length prefix consumed) --
  /// lets arena-backed buffers deserialize without a heap round-trip.
  void read_f32_into(float* dst, std::size_t n) {
    require(n * sizeof(float));
    std::memcpy(dst, bytes_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  template <typename T>
  T read_pod() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::out_of_range("BinaryReader: truncated input");
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_{0};
};

}  // namespace darnet::util
