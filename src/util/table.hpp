// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables and confusion matrices in a readable, diff-friendly form.
#pragma once

#include <string>
#include <vector>

namespace darnet::util {

/// A simple column-aligned text table.
///
///   Table t({"Model", "Hit@1"});
///   t.add_row({"CNN+RNN", "87.02%"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> row);

  /// Render with unicode-free ASCII borders.
  [[nodiscard]] std::string render() const;

  /// RFC-4180-style CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string csv() const;

  /// Write the CSV rendering to a file (creates parent directories).
  void save_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
[[nodiscard]] std::string fmt(double value, int precision = 2);

/// Format as a percentage string, e.g. 0.8702 -> "87.02%".
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 2);

}  // namespace darnet::util
