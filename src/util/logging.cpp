#include "util/logging.hpp"

#include <atomic>

namespace darnet::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold.load(); }
void set_log_threshold(LogLevel level) noexcept { g_threshold.store(level); }

namespace detail {
void emit(LogLevel level, std::string_view message) {
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  out << "[" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace darnet::util
