// Tiny leveled logger. Experiments print structured tables via util::Table;
// the logger is for progress lines and diagnostics.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace darnet::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, std::string_view message);

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream out;
  (out << ... << args);
  emit(level, out.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace darnet::util
