// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in DarNet (scene renderer, IMU generator,
// weight initialisation, data shuffling, virtual network links) takes an
// explicit Rng so that a fixed seed reproduces an experiment bit-for-bit.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

namespace darnet::util {

/// xoshiro256** PRNG seeded via splitmix64. Fast, high quality, and --
/// unlike std::mt19937 with std::normal_distribution -- fully specified,
/// so results are identical across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (cached pair).
  double gaussian() noexcept {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean / standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Bernoulli trial.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[uniform_index(i)]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    shuffle(std::span<T>{items});
  }

  /// Derive an independent child stream (for per-sample determinism).
  Rng fork() noexcept { return Rng{next_u64()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_gaussian_{0.0};
  bool has_cached_gaussian_{false};
};

}  // namespace darnet::util
