// darnet::sync checked-build machinery: per-thread held-lock stack, global
// lock-order graph with cycle detection, and the CondVar wait watchdog.
//
// Design notes (why this file looks the way it does):
//
//   * The held-lock stack is plain-old-data thread_local storage (fixed
//     array + count, no destructor), so locks taken or released during
//     static/thread-local destruction never touch a dead vector.
//   * The lock-order graph and its mutex are immortalised (allocated once,
//     never destroyed) for the same reason. g_graph-guarding uses a *raw*
//     std::mutex deliberately: the checker must not recurse into itself.
//   * Metric emission (sync/lock_wait_us, sync/order_edges_total) caches
//     registry handles in atomics. Registration takes the obs registry
//     mutex -- which is itself a sync::Mutex after the PR-5 migration -- so
//     emission (a) only registers when the thread is not already inside an
//     emission and holds no obs/* lock, and (b) always happens after the
//     graph mutex is released. Once cached, Counter::add and
//     Histogram::record are lock-free and unconditionally safe.

#include "sync/sync.hpp"

#if defined(DARNET_CHECKED)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace darnet::sync {
namespace {

// -- failure -----------------------------------------------------------------

[[noreturn]] void fail_msg(const std::string& message) {
  const std::string line = "darnet::sync failure: " + message + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

[[nodiscard]] std::string site(const char* file, unsigned line) {
  return std::string(file ? file : "?") + ":" + std::to_string(line);
}

// -- per-thread held-lock stack (POD storage: survives TLS destruction) ------

struct HeldEntry {
  const Mutex* mu;
  const char* name;
  const char* file;
  unsigned line;
};

constexpr int kMaxHeld = 64;
thread_local HeldEntry t_held[kMaxHeld];
thread_local int t_held_count = 0;
thread_local bool t_in_emit = false;

void push_held(const Mutex& mu, const char* file, unsigned line) {
  if (t_held_count >= kMaxHeld) {
    fail_msg("held-lock stack overflow (more than 64 locks held) acquiring "
             "\"" +
             std::string(mu.name()) + "\" at " + site(file, line));
  }
  t_held[t_held_count++] = HeldEntry{&mu, mu.name(), file, line};
}

[[nodiscard]] int find_held(const Mutex& mu) {
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mu == &mu) return i;
  }
  return -1;
}

// -- global lock-order graph (immortal; name-keyed) --------------------------

struct EdgeSite {
  // Where the holder (edge source) was locked, and where the acquisition
  // (edge target) happened, the first time this edge was observed.
  const char* holder_file;
  unsigned holder_line;
  const char* acquire_file;
  unsigned acquire_line;
};

using EdgeMap = std::map<std::string, std::map<std::string, EdgeSite,
                                               std::less<>>,
                         std::less<>>;

std::mutex& graph_mu() {
  static std::mutex* mu = new std::mutex;  // immortal: see header comment
  return *mu;
}

EdgeMap& edges() {
  static EdgeMap* m = new EdgeMap;  // immortal
  return *m;
}

std::atomic<std::uint64_t> g_edge_count{0};

// Depth-first reachability over edges(); requires graph_mu() held. When
// `to` is reachable from `from`, returns the first edge out of `from` on
// the discovered path (for abort-message attribution).
[[nodiscard]] const EdgeSite* find_path(std::string_view from,
                                        std::string_view to,
                                        std::string* via) {
  const EdgeMap& graph = edges();
  const auto from_it = graph.find(from);
  if (from_it == graph.end()) return nullptr;
  // Direct edge first: the common AB/BA inversion reports exactly the
  // prior conflicting acquisition.
  const auto direct = from_it->second.find(to);
  if (direct != from_it->second.end()) {
    *via = std::string(to);
    return &direct->second;
  }
  for (const auto& [next, edge_site] : from_it->second) {
    // Bounded DFS through intermediates (graphs here are tiny).
    std::string ignored;
    if (next == from) continue;
    if (find_path(next, to, &ignored) != nullptr) {
      *via = next;
      return &edge_site;
    }
  }
  return nullptr;
}

// -- metric emission (checked builds only; cached lock-free handles) ---------

std::atomic<obs::Histogram*> g_lock_wait_hist{nullptr};
std::atomic<obs::Counter*> g_order_edges{nullptr};

[[nodiscard]] bool safe_to_register() {
  if (t_in_emit) return false;
  for (int i = 0; i < t_held_count; ++i) {
    // Registering takes the obs registry lock; never attempt it while any
    // obs/* lock is already held by this thread.
    if (std::strncmp(t_held[i].name, "obs/", 4) == 0) return false;
  }
  return true;
}

void emit_lock_wait_us(std::int64_t us) {
#ifdef DARNET_OBS
  obs::Histogram* hist = g_lock_wait_hist.load(std::memory_order_acquire);
  if (hist == nullptr) {
    if (!safe_to_register()) return;
    t_in_emit = true;
    hist = &obs::registry().histogram("sync/lock_wait_us");
    t_in_emit = false;
    g_lock_wait_hist.store(hist, std::memory_order_release);
  }
  hist->record(static_cast<std::uint64_t>(us < 0 ? 0 : us));
#else
  static_cast<void>(us);
#endif
}

void emit_order_edges(int count) {
#ifdef DARNET_OBS
  obs::Counter* counter = g_order_edges.load(std::memory_order_acquire);
  if (counter == nullptr) {
    if (!safe_to_register()) return;
    t_in_emit = true;
    counter = &obs::registry().counter("sync/order_edges_total");
    t_in_emit = false;
    g_order_edges.store(counter, std::memory_order_release);
  }
  counter->add(static_cast<std::uint64_t>(count));
#else
  static_cast<void>(count);
#endif
}

// -- watchdog configuration --------------------------------------------------

std::atomic<std::int64_t> g_watch_bound_us{0};
std::atomic<bool> g_watch_fatal{false};
std::atomic<std::uint64_t> g_watch_trips{0};
std::once_flag g_watch_env_once;

void watchdog_env_init() {
  std::call_once(g_watch_env_once, [] {
    if (const char* bound = std::getenv("DARNET_SYNC_WAIT_BOUND_US")) {
      g_watch_bound_us.store(std::atoll(bound), std::memory_order_relaxed);
    }
    if (const char* fatal = std::getenv("DARNET_SYNC_WAIT_FATAL")) {
      g_watch_fatal.store(fatal[0] != '\0' && fatal[0] != '0',
                          std::memory_order_relaxed);
    }
  });
}

}  // namespace

// -- public checked API ------------------------------------------------------

void set_wait_watchdog(WatchdogConfig config) noexcept {
  watchdog_env_init();  // later set_wait_watchdog overrides the env
  g_watch_bound_us.store(config.bound_us, std::memory_order_relaxed);
  g_watch_fatal.store(config.fatal, std::memory_order_relaxed);
}

WatchdogConfig wait_watchdog() noexcept {
  watchdog_env_init();
  return WatchdogConfig{g_watch_bound_us.load(std::memory_order_relaxed),
                        g_watch_fatal.load(std::memory_order_relaxed)};
}

std::uint64_t watchdog_trips() noexcept {
  return g_watch_trips.load(std::memory_order_relaxed);
}

bool held_by_current_thread(const Mutex& mu) noexcept {
  return find_held(mu) >= 0;
}

int held_count() noexcept { return t_held_count; }

std::uint64_t order_edge_count() noexcept {
  return g_edge_count.load(std::memory_order_relaxed);
}

std::vector<OrderEdge> order_graph_snapshot() {
  std::vector<OrderEdge> out;
  std::lock_guard<std::mutex> lock(graph_mu());
  for (const auto& [from, row] : edges()) {
    for (const auto& [to, site] : row) {
      out.push_back(OrderEdge{from, to, site.acquire_file, site.acquire_line});
    }
  }
  return out;  // EdgeMap iteration is already (from, to)-sorted
}

void reset_order_graph_for_test() noexcept {
  std::lock_guard<std::mutex> lock(graph_mu());
  edges().clear();
  g_edge_count.store(0, std::memory_order_relaxed);
}

namespace {

// CV-wait site registry (immortal, like the order graph): every function the
// watchdog has seen enter a CondVar wait, by pretty name.
std::mutex& wait_sites_mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::set<std::string>& wait_sites() {
  static auto* sites = new std::set<std::string>;
  return *sites;
}

void record_wait_site(const std::source_location& loc) {
  std::lock_guard<std::mutex> lock(wait_sites_mu());
  wait_sites().emplace(loc.function_name());
}

}  // namespace

std::vector<std::string> cv_wait_sites_snapshot() {
  std::lock_guard<std::mutex> lock(wait_sites_mu());
  return {wait_sites().begin(), wait_sites().end()};
}

namespace detail {

[[noreturn]] void fail(const char* what, const char* detail_a,
                       const char* detail_b) {
  std::string message(what ? what : "unknown");
  if (detail_a != nullptr) message += std::string(": \"") + detail_a + "\"";
  if (detail_b != nullptr) message += std::string(" (") + detail_b + ")";
  fail_msg(message);
}

void assert_held(const Mutex& mu, const char* expr, const char* file,
                 unsigned line) {
  if (find_held(mu) >= 0) return;
  fail_msg("DARNET_ASSERT_HELD(" + std::string(expr) + ") failed: mutex \"" +
           mu.name() + "\" is not held by this thread at " +
           site(file, line));
}

void assert_not_held(const Mutex& mu, const char* expr, const char* file,
                     unsigned line) {
  const int idx = find_held(mu);
  if (idx < 0) return;
  fail_msg("DARNET_ASSERT_NOT_HELD(" + std::string(expr) +
           ") failed: mutex \"" + mu.name() +
           "\" is held by this thread (locked at " +
           site(t_held[idx].file, t_held[idx].line) + ") at " +
           site(file, line));
}

void pre_lock_order_check(Mutex& mu, const std::source_location& loc) {
  // 1. Recursive acquisition of the same instance: std::mutex would be UB.
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].mu == &mu) {
      fail_msg("recursive lock of mutex \"" + std::string(mu.name()) +
               "\" (first locked at " +
               site(t_held[i].file, t_held[i].line) + ", relocked at " +
               site(loc.file_name(), loc.line()) + ")");
    }
    // 2. Same-name nesting: names define lock ranks, so two locks sharing
    //    a name may never nest (a self-edge in the order graph).
    if (std::strcmp(t_held[i].name, mu.name()) == 0) {
      fail_msg("lock-order violation: acquiring \"" +
               std::string(mu.name()) + "\" at " +
               site(loc.file_name(), loc.line()) +
               " while already holding a lock of the same name (locked at " +
               site(t_held[i].file, t_held[i].line) +
               "); same-name locks share a rank and may not nest");
    }
  }
  if (t_held_count == 0) return;

  // 3. Order-graph edges: held-name -> acquired-name. Inserting an edge
  //    whose reverse direction is already reachable closes a cycle; abort
  //    with both acquisition sites the first time the inversion is *seen*,
  //    whether or not this run would have deadlocked.
  int new_edges = 0;
  {
    std::lock_guard<std::mutex> graph_lock(graph_mu());
    for (int i = 0; i < t_held_count; ++i) {
      const HeldEntry& held = t_held[i];
      auto& row = edges()[held.name];
      if (row.find(std::string_view(mu.name())) != row.end()) continue;
      std::string via;
      const EdgeSite* conflict = find_path(mu.name(), held.name, &via);
      if (conflict != nullptr) {
        fail_msg(
            "lock-order cycle: acquiring \"" + std::string(mu.name()) +
            "\" at " + site(loc.file_name(), loc.line()) +
            " while holding \"" + held.name + "\" (locked at " +
            site(held.file, held.line) + ") inverts the established order \"" +
            mu.name() + "\" -> \"" + via + "\" (\"" + mu.name() +
            "\" held at " + site(conflict->holder_file, conflict->holder_line) +
            ", \"" + via + "\" acquired at " +
            site(conflict->acquire_file, conflict->acquire_line) + ")");
      }
      row.emplace(std::string(mu.name()),
                  EdgeSite{held.file, held.line, loc.file_name(),
                           loc.line()});
      ++new_edges;
    }
  }
  if (new_edges > 0) {
    g_edge_count.fetch_add(static_cast<std::uint64_t>(new_edges),
                           std::memory_order_relaxed);
    emit_order_edges(new_edges);  // after graph_mu() is released
  }
}

void on_lock(Mutex& mu, const std::source_location& loc, bool contended,
             std::int64_t wait_us) {
  push_held(mu, loc.file_name(), loc.line());
  if (contended) emit_lock_wait_us(wait_us);
}

void on_try_lock_success(Mutex& mu, const std::source_location& loc) {
  push_held(mu, loc.file_name(), loc.line());
}

void on_unlock(Mutex& mu) {
  const int idx = find_held(mu);
  if (idx < 0) {
    fail_msg("unlock of mutex \"" + std::string(mu.name()) +
             "\" which is not held by this thread");
  }
  // Out-of-order release is legal (UniqueLock::unlock before another lock's
  // destructor); erase in place.
  for (int i = idx; i + 1 < t_held_count; ++i) t_held[i] = t_held[i + 1];
  --t_held_count;
}

void on_cv_release(Mutex& mu, const std::source_location& loc) {
  if (t_held_count == 0 || t_held[t_held_count - 1].mu != &mu) {
    const int idx = find_held(mu);
    if (idx < 0) {
      fail_msg("CondVar wait on mutex \"" + std::string(mu.name()) +
               "\" which is not held by this thread (wait at " +
               site(loc.file_name(), loc.line()) + ")");
    }
    fail_msg("CondVar wait on mutex \"" + std::string(mu.name()) +
             "\" which is not the most recently acquired lock (wait at " +
             site(loc.file_name(), loc.line()) + "; \"" +
             t_held[t_held_count - 1].name +
             "\" was acquired after it at " +
             site(t_held[t_held_count - 1].file,
                  t_held[t_held_count - 1].line) +
             "); waiting would sleep while holding a later-ranked lock");
  }
  --t_held_count;  // popped for the duration of the native wait
}

void on_cv_reacquire(Mutex& mu, const std::source_location& loc) {
  push_held(mu, loc.file_name(), loc.line());
}

void on_watchdog_trip(Mutex& mu, const std::source_location& loc,
                      std::int64_t waited_us, std::int64_t bound_us) {
  g_watch_trips.fetch_add(1, std::memory_order_relaxed);
  const bool fatal = g_watch_fatal.load(std::memory_order_relaxed);
  const std::string message =
      "wait watchdog: CondVar wait on \"" + std::string(mu.name()) +
      "\" at " + site(loc.file_name(), loc.line()) + " has lasted " +
      std::to_string(waited_us) + " us (bound " + std::to_string(bound_us) +
      " us) -- possible lost wakeup";
  if (fatal) fail_msg(message);
  const std::string line = "darnet::sync warning: " + message + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

WaitWatch::WaitWatch(UniqueLock& lock, const std::source_location& loc)
    : mu_(lock.mutex()),
      loc_(loc),
      start_(std::chrono::steady_clock::now()) {
  if (!lock.owns_lock()) {
    fail("CondVar wait requires an owned lock", mu_.name(), nullptr);
  }
  record_wait_site(loc);
  const WatchdogConfig config = wait_watchdog();
  bound_us_ = config.bound_us;
  fatal_ = config.fatal;
}

void WaitWatch::wait_slice(std::condition_variable& cv,
                           std::chrono::steady_clock::time_point deadline) {
  on_cv_release(mu_, loc_);
  {
    std::unique_lock<std::mutex> native(mu_.native(), std::adopt_lock);
    auto slice_deadline = deadline;
    if (bound_us_ > 0 && !tripped_) {
      const auto trip_at = start_ + std::chrono::microseconds(bound_us_);
      if (trip_at < slice_deadline) slice_deadline = trip_at;
    }
    if (slice_deadline == std::chrono::steady_clock::time_point::max()) {
      cv.wait(native);
    } else {
      cv.wait_until(native, slice_deadline);
    }
    native.release();
  }
  on_cv_reacquire(mu_, loc_);
  if (bound_us_ > 0 && !tripped_) {
    const auto waited_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    if (waited_us >= bound_us_) {
      tripped_ = true;
      on_watchdog_trip(mu_, loc_, waited_us, bound_us_);
    }
  }
}

}  // namespace detail
}  // namespace darnet::sync

#endif  // DARNET_CHECKED
