#pragma once
// darnet::sync -- annotated synchronisation primitives with structural
// concurrency checking.
//
// Drop-in wrappers over std::mutex / std::condition_variable that compile to
// bare passthroughs when DARNET_CHECKED is OFF (the same zero-cost idiom as
// src/check and src/obs: every checked-only argument sits inside an
// unevaluated sizeof, so it is type-checked but never executed).  In checked
// builds the wrappers maintain three structural detectors:
//
//   1. A per-thread held-lock stack.  DARNET_ASSERT_HELD(mu) /
//      DARNET_ASSERT_NOT_HELD(mu) abort with file:line attribution when the
//      calling thread's stack disagrees, and recursive acquisition of the
//      same Mutex instance aborts immediately (std::mutex would deadlock or
//      be UB).
//
//   2. A global lock-order graph keyed by mutex *name*.  Every acquisition
//      while other locks are held records held-name -> acquired-name edges;
//      the first time an edge would close a cycle the process aborts,
//      printing both conflicting acquisition sites -- flagging deadlock
//      *potential* even on runs that never interleave into the deadlock.
//
//   3. A condition-variable wait watchdog.  CondVar only exposes the
//      predicate-taking wait forms (spurious wakeups are structurally
//      re-checked), and checked builds slice long waits so that waits
//      exceeding a configurable bound are flagged as potential lost
//      wakeups (warn, or abort when fatal).
//
// Every Mutex carries a stable name ("subsystem/what") used for lock-order
// edges and abort messages.  Names, not instances, define the order: two
// locks with the same name may never nest (so per-shard locks of one kind
// share one rank), and distinct names form the partial order documented in
// DESIGN.md section 10.
//
// Annotation macros: DARNET_GUARDED_BY(mu) tags a member as protected by a
// mutex, DARNET_ATOMIC tags intentionally lock-free members, and
// DARNET_THREAD_LOCAL tags thread-confined members.  They expand to nothing
// on every compiler -- the contract is enforced by darnet_lint
// (sync-guarded-by), not the compiler, so the annotations can never bit-rot
// into semantic changes.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

// Lint-level annotations (machine-checked by darnet_lint sync-guarded-by).
#define DARNET_GUARDED_BY(mu)
#define DARNET_ATOMIC
#define DARNET_THREAD_LOCAL

#if defined(DARNET_CHECKED)
#include <source_location>
#endif

namespace darnet::sync {

[[nodiscard]] constexpr bool enabled() noexcept {
#if defined(DARNET_CHECKED)
  return true;
#else
  return false;
#endif
}

namespace detail {

// Declared but never defined: the DARNET_CHECKED=OFF assertion macros wrap
// their arguments in sizeof(unevaluated(...)), so the operands are
// type-checked yet never evaluated (zero cost, no codegen).
template <typename... Args>
int unevaluated(const Args&...);

}  // namespace detail

#if defined(DARNET_CHECKED)

class Mutex;

namespace detail {

[[noreturn]] void fail(const char* what, const char* detail_a,
                       const char* detail_b);
void assert_held(const Mutex& mu, const char* expr, const char* file,
                 unsigned line);
void assert_not_held(const Mutex& mu, const char* expr, const char* file,
                     unsigned line);
void on_lock(Mutex& mu, const std::source_location& loc, bool contended,
             std::int64_t wait_us);
void on_try_lock_success(Mutex& mu, const std::source_location& loc);
void pre_lock_order_check(Mutex& mu, const std::source_location& loc);
void on_unlock(Mutex& mu);
// CondVar wait bookkeeping: the waited mutex must be the top of the calling
// thread's held stack; it is popped for the duration of the native wait and
// re-pushed on wakeup.
void on_cv_release(Mutex& mu, const std::source_location& loc);
void on_cv_reacquire(Mutex& mu, const std::source_location& loc);
void on_watchdog_trip(Mutex& mu, const std::source_location& loc,
                      std::int64_t waited_us, std::int64_t bound_us);

}  // namespace detail

// A named mutex.  The name keys the global lock-order graph; use a stable
// "subsystem/what" literal.  Constexpr-constructible so namespace-scope and
// function-local-static instances need no dynamic initialisation.
class Mutex {
 public:
  constexpr explicit Mutex(const char* name) noexcept : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(std::source_location loc = std::source_location::current()) {
    detail::pre_lock_order_check(*this, loc);
    if (raw_.try_lock()) {
      detail::on_lock(*this, loc, /*contended=*/false, 0);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    raw_.lock();
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    detail::on_lock(*this, loc, /*contended=*/true, waited);
  }

  [[nodiscard]] bool try_lock(
      std::source_location loc = std::source_location::current()) {
    detail::pre_lock_order_check(*this, loc);
    if (!raw_.try_lock()) return false;
    detail::on_try_lock_success(*this, loc);
    return true;
  }

  void unlock() {
    detail::on_unlock(*this);
    raw_.unlock();
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] std::mutex& native() noexcept { return raw_; }

 private:
  std::mutex raw_;
  const char* const name_;
};

#else  // !DARNET_CHECKED

// Unchecked: a bare std::mutex passthrough.  The name is accepted (so call
// sites are identical in both builds) and retained for diagnostics.
class Mutex {
 public:
  constexpr explicit Mutex(const char* name) noexcept : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() { raw_.lock(); }
  [[nodiscard]] bool try_lock() { return raw_.try_lock(); }
  void unlock() { raw_.unlock(); }

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] std::mutex& native() noexcept { return raw_; }

 private:
  std::mutex raw_;
  const char* const name_;
};

#endif  // DARNET_CHECKED

// RAII scoped lock (the sync:: analogue of std::lock_guard).
class [[nodiscard]] Lock {
 public:
#if defined(DARNET_CHECKED)
  explicit Lock(Mutex& mu,
                std::source_location loc = std::source_location::current())
      : mu_(mu) {
    mu_.lock(loc);
  }
#else
  explicit Lock(Mutex& mu) : mu_(mu) { mu_.lock(); }
#endif
  ~Lock() { mu_.unlock(); }
  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

 private:
  Mutex& mu_;
};

// Movable-free ownership-tracking lock for CondVar waits (the sync::
// analogue of std::unique_lock).
class [[nodiscard]] UniqueLock {
 public:
#if defined(DARNET_CHECKED)
  explicit UniqueLock(Mutex& mu,
                      std::source_location loc =
                          std::source_location::current())
      : mu_(mu) {
    mu_.lock(loc);
    owned_ = true;
  }

  void lock(std::source_location loc = std::source_location::current()) {
    if (owned_) {
      detail::fail("UniqueLock::lock on an already-owned lock", mu_.name(),
                   nullptr);
    }
    mu_.lock(loc);
    owned_ = true;
  }
#else
  explicit UniqueLock(Mutex& mu) : mu_(mu) {
    mu_.lock();
    owned_ = true;
  }

  void lock() {
    mu_.lock();
    owned_ = true;
  }
#endif

  ~UniqueLock() {
    if (owned_) mu_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() {
    mu_.unlock();
    owned_ = false;
  }

  [[nodiscard]] bool owns_lock() const noexcept { return owned_; }
  [[nodiscard]] Mutex& mutex() noexcept { return mu_; }

 private:
  Mutex& mu_;
  bool owned_ = false;
};

// Wait-watchdog configuration.  bound_us == 0 disables the watchdog (the
// default: serve workers legitimately park forever on an idle queue).  When
// enabled, any single CondVar wait exceeding bound_us microseconds is
// flagged as a potential lost wakeup -- a warning line on stderr (and an
// abort when fatal), plus a trip counter tests can poll.  Also initialised
// from DARNET_SYNC_WAIT_BOUND_US / DARNET_SYNC_WAIT_FATAL at first use.
struct WatchdogConfig {
  std::int64_t bound_us = 0;
  bool fatal = false;
};

// One edge of the runtime lock-order graph: `to` was acquired while `from`
// was held, first observed at acquire_file:acquire_line. Exported so
// darnet_analyze's statically-extracted graph can be cross-checked against
// what actually happened at runtime (tests/test_analyze.cpp).
struct OrderEdge {
  std::string from;
  std::string to;
  std::string acquire_file;
  unsigned acquire_line = 0;
};

#if defined(DARNET_CHECKED)

void set_wait_watchdog(WatchdogConfig config) noexcept;
[[nodiscard]] WatchdogConfig wait_watchdog() noexcept;
[[nodiscard]] std::uint64_t watchdog_trips() noexcept;

// Introspection for tests and assertion macros.
[[nodiscard]] bool held_by_current_thread(const Mutex& mu) noexcept;
[[nodiscard]] int held_count() noexcept;
[[nodiscard]] std::uint64_t order_edge_count() noexcept;
// Copies the lock-order graph observed so far (deterministic: edges sorted
// by (from, to)). Empty in unchecked builds, where no graph is kept.
[[nodiscard]] std::vector<OrderEdge> order_graph_snapshot();
// Clears the global lock-order graph (edges learned so far).  Test-only:
// lets death-test children seed conflicting orders from a clean slate.
void reset_order_graph_for_test() noexcept;
// Sorted unique pretty function names (std::source_location::function_name
// of the CondVar::wait caller) the CV watchdog has observed waiting so far.
// Exported so darnet_analyze's static may-block effect can be cross-checked
// against runtime reality (tests/test_analyze.cpp). Empty in unchecked
// builds, where no wait bookkeeping is kept.
[[nodiscard]] std::vector<std::string> cv_wait_sites_snapshot();

namespace detail {

// Slices a checked CondVar wait so the watchdog can observe progress and the
// predicate is re-checked at every wakeup.  Construction asserts the waited
// mutex is owned and on top of the calling thread's held stack.
class WaitWatch {
 public:
  WaitWatch(UniqueLock& lock, const std::source_location& loc);

  // One bounded native wait on `cv`.  Returns after cv wakes (or a slice
  // deadline passes); trips the watchdog when the total elapsed wait
  // exceeds the configured bound.  `deadline` caps the slice for timed
  // waits (pass time_point::max() for untimed waits).
  void wait_slice(std::condition_variable& cv,
                  std::chrono::steady_clock::time_point deadline);

 private:
  Mutex& mu_;
  std::source_location loc_;
  std::chrono::steady_clock::time_point start_;
  std::int64_t bound_us_;
  bool fatal_ = false;
  bool tripped_ = false;
};

}  // namespace detail

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  // Only predicate-taking waits are exposed: the loop below structurally
  // re-checks the predicate on every wakeup, so a spurious wakeup can never
  // be mistaken for the signalled condition.
  template <typename Pred>
  void wait(UniqueLock& lock, Pred pred,
            std::source_location loc = std::source_location::current()) {
    detail::WaitWatch watch(lock, loc);
    while (!pred()) {
      watch.wait_slice(cv_, std::chrono::steady_clock::time_point::max());
    }
  }

  // Returns pred() at exit, exactly like std::condition_variable::wait_until
  // with a predicate.
  template <typename Pred>
  bool wait_until(UniqueLock& lock,
                  std::chrono::steady_clock::time_point deadline, Pred pred,
                  std::source_location loc = std::source_location::current()) {
    detail::WaitWatch watch(lock, loc);
    while (!pred()) {
      if (std::chrono::steady_clock::now() >= deadline) return pred();
      watch.wait_slice(cv_, deadline);
    }
    return true;
  }

 private:
  std::condition_variable cv_;
};

#else  // !DARNET_CHECKED

inline void set_wait_watchdog(WatchdogConfig) noexcept {}
[[nodiscard]] inline WatchdogConfig wait_watchdog() noexcept { return {}; }
[[nodiscard]] inline std::uint64_t watchdog_trips() noexcept { return 0; }
[[nodiscard]] inline bool held_by_current_thread(const Mutex&) noexcept {
  return false;
}
[[nodiscard]] inline int held_count() noexcept { return 0; }
[[nodiscard]] inline std::uint64_t order_edge_count() noexcept { return 0; }
[[nodiscard]] inline std::vector<OrderEdge> order_graph_snapshot() {
  return {};
}
inline void reset_order_graph_for_test() noexcept {}
[[nodiscard]] inline std::vector<std::string> cv_wait_sites_snapshot() {
  return {};
}

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Pred>
  void wait(UniqueLock& lock, Pred pred) {
    std::unique_lock<std::mutex> native(lock.mutex().native(),
                                        std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

  template <typename Pred>
  bool wait_until(UniqueLock& lock,
                  std::chrono::steady_clock::time_point deadline, Pred pred) {
    std::unique_lock<std::mutex> native(lock.mutex().native(),
                                        std::adopt_lock);
    const bool out = cv_.wait_until(native, deadline, std::move(pred));
    native.release();
    return out;
  }

 private:
  std::condition_variable cv_;
};

#endif  // DARNET_CHECKED

}  // namespace darnet::sync

// Held-lock assertion macros.  Checked builds consult the per-thread held
// stack and abort with expression + file:line attribution on violation;
// unchecked builds type-check the operand inside an unevaluated sizeof and
// generate no code (zero cost: arguments are never evaluated).
#if defined(DARNET_CHECKED)

#define DARNET_ASSERT_HELD(mu) \
  ::darnet::sync::detail::assert_held((mu), #mu, __FILE__, __LINE__)
#define DARNET_ASSERT_NOT_HELD(mu) \
  ::darnet::sync::detail::assert_not_held((mu), #mu, __FILE__, __LINE__)

#else

#define DARNET_ASSERT_HELD(mu) \
  static_cast<void>(sizeof(::darnet::sync::detail::unevaluated(mu)))
#define DARNET_ASSERT_NOT_HELD(mu) \
  static_cast<void>(sizeof(::darnet::sync::detail::unevaluated(mu)))

#endif  // DARNET_CHECKED
