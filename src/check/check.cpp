#include "check/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace darnet::check {

void fail(const char* expr, const char* file, int line,
          const std::string& message) noexcept {
  // One atomic-ish write so death tests and interleaved CI logs see a
  // single coherent line.
  std::ostringstream out;
  out << "darnet::check failure: " << expr;
  if (!message.empty()) out << " -- " << message;
  out << " [" << file << ':' << line << "]\n";
  const std::string text = out.str();
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

bool all_finite(std::span<const float> values) noexcept {
  for (const float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::optional<std::size_t> first_nonfinite(
    std::span<const float> values) noexcept {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) return i;
  }
  return std::nullopt;
}

void assert_all_finite(std::span<const float> values, const char* what,
                       const std::string& context) {
  const auto bad = first_nonfinite(values);
  if (!bad) return;
  std::ostringstream msg;
  msg << "non-finite value " << values[*bad] << " at flat index " << *bad
      << " of " << values.size();
  if (!context.empty()) msg << " in " << context;
  fail(what, "darnet::check::assert_all_finite", 0, msg.str());
}

void ShardWriteTracker::record(std::int64_t begin, std::int64_t end) {
  if (begin >= end) {
    std::ostringstream msg;
    msg << what_ << ": empty or inverted shard [" << begin << ", " << end
        << ")";
    fail("shard begin < end", "darnet::check::ShardWriteTracker", 0,
         msg.str());
  }
  sync::Lock lock(mu_);
  const std::pair<std::int64_t, std::int64_t> range{begin, end};
  const auto it = std::lower_bound(ranges_.begin(), ranges_.end(), range);
  // Overlap iff the predecessor ends after `begin` or the successor starts
  // before `end`.
  const auto overlaps = [&](const std::pair<std::int64_t, std::int64_t>& r) {
    return r.first < end && begin < r.second;
  };
  const std::pair<std::int64_t, std::int64_t>* clash = nullptr;
  if (it != ranges_.begin() && overlaps(*std::prev(it))) {
    clash = &*std::prev(it);
  } else if (it != ranges_.end() && overlaps(*it)) {
    clash = &*it;
  }
  if (clash != nullptr) {
    std::ostringstream msg;
    msg << what_ << ": writer shard [" << begin << ", " << end
        << ") overlaps previously recorded shard [" << clash->first << ", "
        << clash->second << ")";
    fail("disjoint writer shards", "darnet::check::ShardWriteTracker", 0,
         msg.str());
  }
  ranges_.insert(it, range);
}

std::int64_t ShardWriteTracker::covered() const {
  sync::Lock lock(mu_);
  std::int64_t total = 0;
  for (const auto& [b, e] : ranges_) total += e - b;
  return total;
}

void ShardWriteTracker::expect_exact_cover(std::int64_t begin,
                                           std::int64_t end) const {
  sync::Lock lock(mu_);
  std::int64_t cursor = begin;
  bool exact = true;
  for (const auto& [b, e] : ranges_) {
    if (b != cursor) {
      exact = false;
      break;
    }
    cursor = e;
  }
  exact = exact && cursor == end;
  if (!exact) {
    std::ostringstream msg;
    msg << what_ << ": recorded shards do not exactly tile [" << begin
        << ", " << end << ")";
    fail("exact shard cover", "darnet::check::ShardWriteTracker", 0,
         msg.str());
  }
}

}  // namespace darnet::check
