// darnet::check -- the checked-build invariant layer.
//
// Every module in the tree can state its invariants with DARNET_CHECK /
// DARNET_CHECK_MSG. In checked builds (-DDARNET_CHECKED=ON, the default
// for Debug) a failed invariant prints a single diagnostic line to stderr
// and aborts, which makes violations trivially catchable by gtest death
// tests and impossible to ignore in CI. In unchecked builds the macros
// compile to nothing: the condition expression is type-checked (inside an
// unevaluated sizeof) but never evaluated, so hot paths pay zero cost.
//
// The layer also ships the shared dynamic-analysis utilities the nn /
// parallel subsystems hook into:
//   * finite scanning   -- NaN/Inf detection over activation / gradient
//                          buffers (Sequential, optimizers);
//   * ShardWriteTracker -- overlapping-writer detection for parallel_for
//                          row shards (ops kernels, sharded trainer).
//
// darnet::check depends on nothing but the standard library and sits below
// util/tensor in the link order; see DESIGN.md "Correctness tooling".
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sync/sync.hpp"

namespace darnet::check {

/// True when the library was compiled with checked-build invariants.
[[nodiscard]] constexpr bool enabled() noexcept {
#ifdef DARNET_CHECKED
  return true;
#else
  return false;
#endif
}

/// Report a failed invariant and abort. The diagnostic is emitted to
/// stderr as one line, prefixed "darnet::check failure", so death tests
/// and CI logs can match it. Never returns; never throws.
[[noreturn]] void fail(const char* expr, const char* file, int line,
                       const std::string& message) noexcept;

/// True iff every value is finite (no NaN, no +/-Inf).
[[nodiscard]] bool all_finite(std::span<const float> values) noexcept;

/// Index of the first non-finite value, or nullopt when all are finite.
[[nodiscard]] std::optional<std::size_t> first_nonfinite(
    std::span<const float> values) noexcept;

/// Abort with attribution (`what`, `context`, offending index and value)
/// when `values` contains a NaN/Inf. Called by the DARNET_CHECK_FINITE
/// macro below; always compiled so tests can exercise it directly.
void assert_all_finite(std::span<const float> values, const char* what,
                       const std::string& context);

/// Overlapping-writer detection for sharded parallel loops.
///
/// Each parallel_for chunk that writes rows [begin, end) of a shared
/// output records its range; a record that overlaps any previously
/// recorded range aborts with both ranges in the message. `covered()`
/// lets the issuing thread additionally assert exact coverage after the
/// region completes. Thread-safe; detection is always active (call sites
/// in library code are themselves compiled only under DARNET_CHECKED).
class ShardWriteTracker {
 public:
  /// `what` names the sharded output in diagnostics (e.g. "matmul rows");
  /// the pointee must outlive the tracker.
  explicit ShardWriteTracker(const char* what) : what_(what) {}

  /// Record a writer shard [begin, end); aborts on overlap or on an
  /// empty/negative range.
  void record(std::int64_t begin, std::int64_t end);

  /// Total number of indices recorded so far.
  [[nodiscard]] std::int64_t covered() const;

  /// Abort unless the recorded shards exactly tile [begin, end).
  void expect_exact_cover(std::int64_t begin, std::int64_t end) const;

 private:
  mutable sync::Mutex mu_{"check/shard_tracker"};
  const char* const what_;
  // Kept sorted by begin; adjacent ranges are disjoint by construction.
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges_
      DARNET_GUARDED_BY(mu_);
};

}  // namespace darnet::check

// -- Assertion macros --------------------------------------------------------
//
// DARNET_CHECK(cond)            -- invariant with no extra context.
// DARNET_CHECK_MSG(cond, msg)   -- invariant with a std::string-convertible
//                                  message (evaluated only on failure).
// DARNET_CHECK_FINITE(span, ctx)-- NaN/Inf scan with attribution.
//
// In unchecked builds all three compile to a discarded unevaluated-sizeof
// expression: operands are type-checked (so checks cannot rot) but no code
// is generated and no side effects run.

#ifdef DARNET_CHECKED

#define DARNET_CHECK(cond)                                       \
  (static_cast<bool>(cond)                                       \
       ? static_cast<void>(0)                                    \
       : ::darnet::check::fail(#cond, __FILE__, __LINE__, {}))

#define DARNET_CHECK_MSG(cond, msg)                              \
  (static_cast<bool>(cond)                                       \
       ? static_cast<void>(0)                                    \
       : ::darnet::check::fail(#cond, __FILE__, __LINE__, (msg)))

#define DARNET_CHECK_FINITE(span, context) \
  ::darnet::check::assert_all_finite((span), #span, (context))

#else  // !DARNET_CHECKED

#define DARNET_CHECK(cond) \
  static_cast<void>(sizeof(static_cast<bool>(cond) ? 1 : 1))

#define DARNET_CHECK_MSG(cond, msg)                               \
  static_cast<void>(sizeof(static_cast<bool>(cond) ? 1 : 1) +    \
                    sizeof(::std::string(msg)))

#define DARNET_CHECK_FINITE(span, context)                              \
  static_cast<void>(sizeof(::darnet::check::all_finite(span) ? 1 : 1) + \
                    sizeof(::std::string(context)))

#endif  // DARNET_CHECKED
